package arch

import (
	"math"
	"sort"

	"photoloop/internal/workload"
)

// Fingerprint returns a 64-bit FNV-1a hash identifying the architecture:
// two architectures hash equal exactly when every modeling-relevant
// property matches — level structure, domains, keep sets, capacities,
// bandwidths, spatial factors, converter chains, clock, word sizes, and
// the referenced components' per-action energies, areas and static power.
// The sweep subsystem keys its cross-variant result cache on it, so a
// collision-free fingerprint is what makes deduplicating identical
// (architecture, layer) evaluations across sweep points safe.
//
// Like Area and KeepLevels, the fingerprint reflects the architecture at
// call time; it is not cached, so callers mutating an Arch between builds
// (the sweep's variant expansion does not — it rebuilds) must refingerprint.
func (a *Arch) Fingerprint() uint64 {
	w := &fpWriter{h: fnvOffset64}
	w.str(a.Name)
	w.f64(a.ClockGHz)
	w.i64(int64(a.DefaultWordBits))
	w.i64(int64(len(a.Levels)))
	for i := range a.Levels {
		a.Levels[i].fingerprintInto(w)
	}
	w.str(a.Compute.Name)
	w.i64(int64(a.Compute.Domain))
	w.refs(a.Compute.PerMAC)
	// Components referenced anywhere in the architecture, in sorted name
	// order: name, class, per-action energies, area, static power.
	if a.Lib != nil {
		names := a.Lib.Names()
		sort.Strings(names)
		for _, name := range names {
			c, err := a.Lib.Get(name)
			if err != nil {
				continue
			}
			w.str(c.Name())
			w.str(c.Class())
			for _, action := range c.Actions() {
				e, _ := c.Energy(action)
				w.str(action)
				w.f64(e)
			}
			w.f64(c.Area())
			w.f64(c.StaticPower())
		}
	}
	return w.h
}

func (l *Level) fingerprintInto(w *fpWriter) {
	w.str(l.Name)
	w.i64(int64(l.Domain))
	w.i64(int64(l.Keeps))
	w.i64(l.CapacityBits)
	w.i64(int64(l.WordBits))
	w.f64(l.BandwidthWordsPerCycle)
	w.str(l.AccessComponent)
	w.bool(l.Streaming)
	w.i64(int64(l.MaxTemporalProduct))
	w.i64(int64(len(l.Spatial)))
	for _, f := range l.Spatial {
		w.i64(int64(f.Count))
		w.i64(int64(len(f.Dims)))
		for _, d := range f.Dims {
			w.i64(int64(d))
		}
	}
	w.i64(int64(l.MaxFanout))
	w.i64(int64(len(l.FreeSpatialDims)))
	for _, d := range l.FreeSpatialDims {
		w.i64(int64(d))
	}
	w.bool(l.NoMulticast)
	w.bool(l.NoSpatialReduce)
	w.bool(l.InputOverlapSharing)
	w.via(l.FillVia)
	w.via(l.UpdateVia)
	w.via(l.DrainVia)
}

// fpWriter serializes canonical values into an inlined FNV-1a hash. Every
// field write is self-delimiting (fixed width or length-prefixed) so
// adjacent fields cannot alias. The byte stream is little-endian, matching
// the hash/fnv-backed implementation this replaces, so fingerprints are
// stable across the change.
type fpWriter struct{ h uint64 }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func (w *fpWriter) i64(v int64) {
	h, x := w.h, uint64(v)
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime64
		x >>= 8
	}
	w.h = h
}

func (w *fpWriter) f64(v float64) { w.i64(int64(math.Float64bits(v))) }

func (w *fpWriter) bool(v bool) {
	if v {
		w.i64(1)
	} else {
		w.i64(0)
	}
}

func (w *fpWriter) str(s string) {
	w.i64(int64(len(s)))
	h := w.h
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	w.h = h
}

func (w *fpWriter) refs(refs []ActionRef) {
	w.i64(int64(len(refs)))
	for _, r := range refs {
		w.str(r.Component)
		w.str(r.Action)
		w.f64(r.PerWord)
		w.bool(r.PerDistinct)
	}
}

func (w *fpWriter) via(m map[workload.Tensor][]ActionRef) {
	w.i64(int64(len(m)))
	for _, t := range workload.AllTensors() {
		if refs, ok := m[t]; ok {
			w.i64(int64(t))
			w.refs(refs)
		}
	}
}
