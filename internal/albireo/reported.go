package albireo

// This file holds the reference values the reproduction compares against.
// The ISPASS paper reports results as bar charts; the numbers below are
// digitized estimates from those figures (and, for Fig. 2, from the
// Albireo paper's scaling projections they trace back to). They are
// comparison references, not model inputs — except that the conservative
// component energies in scaling.go were calibrated so the best-case Fig. 2
// breakdown lands on the reported conservative bar, mirroring the paper's
// own calibration to the Albireo component tables.

// ReportedFig2 returns the reported best-case energy breakdown (pJ/MAC)
// for a scaling projection, keyed by Fig. 2 bin.
func ReportedFig2(s Scaling) map[Fig2Bin]float64 {
	switch s {
	case Conservative:
		return map[Fig2Bin]float64{
			BinMRR: 0.30, BinMZM: 0.55, BinLaser: 0.50, BinAOAE: 0.40,
			BinDEAE: 0.90, BinAEDE: 0.60, BinCache: 0.12,
		}
	case Moderate:
		return map[Fig2Bin]float64{
			BinMRR: 0.14, BinMZM: 0.26, BinLaser: 0.23, BinAOAE: 0.19,
			BinDEAE: 0.42, BinAEDE: 0.28, BinCache: 0.08,
		}
	case Aggressive:
		return map[Fig2Bin]float64{
			BinMRR: 0.05, BinMZM: 0.09, BinLaser: 0.08, BinAOAE: 0.06,
			BinDEAE: 0.14, BinAEDE: 0.09, BinCache: 0.06,
		}
	}
	return nil
}

// ReportedFig2Total returns the reported best-case total (pJ/MAC).
func ReportedFig2Total(s Scaling) float64 {
	var t float64
	for _, v := range ReportedFig2(s) {
		t += v
	}
	return t
}

// Fig3Reported holds the throughput references of Fig. 3 (MACs/cycle).
type Fig3Reported struct {
	// Ideal assumes 100% compute-unit utilization.
	Ideal float64
	// Reported is the Albireo paper's own (near-ideal) number.
	Reported float64
}

// ReportedFig3 returns the Fig. 3 references per workload name.
func ReportedFig3() map[string]Fig3Reported {
	return map[string]Fig3Reported{
		"vgg16":   {Ideal: 6912, Reported: 6512},
		"alexnet": {Ideal: 6912, Reported: 5870},
	}
}

// PaperClaims collects the paper's headline quantitative claims, with the
// tolerance bands the integration tests assert (shape, not absolute
// numbers, per the reproduction policy).
type PaperClaims struct {
	// Fig2MaxAvgError: "The average overall energy error is 0.4%."
	// We assert our calibrated model stays within 5%.
	Fig2MaxAvgError float64
	// Fig3VGGMinUtil / Fig3AlexMaxUtil: VGG16 runs near ideal; AlexNet is
	// significantly degraded by strided/FC layers.
	Fig3VGGMinUtil  float64
	Fig3AlexMaxUtil float64
	// Fig4AggressiveDRAMShare: "DRAM consumes 75% of overall system
	// energy" for the aggressively-scaled system.
	Fig4AggressiveDRAMShareLo float64
	Fig4AggressiveDRAMShareHi float64
	// Fig4ConservativeDRAMShareHi: conservative DRAM share is small.
	Fig4ConservativeDRAMShareHi float64
	// Fig4CombinedReduction: batching + fusion reduce aggressive system
	// energy by 67% (3x).
	Fig4CombinedReductionLo float64
	// Fig5ConverterReduction: reuse scaling cuts data-converter energy by
	// 42% and accelerator energy by 31%.
	Fig5ConverterReductionLo   float64
	Fig5AcceleratorReductionLo float64
}

// Claims returns the tolerance bands used by the integration tests.
func Claims() PaperClaims {
	return PaperClaims{
		Fig2MaxAvgError:             0.05,
		Fig3VGGMinUtil:              0.60,
		Fig3AlexMaxUtil:             0.50,
		Fig4AggressiveDRAMShareLo:   0.55,
		Fig4AggressiveDRAMShareHi:   0.90,
		Fig4ConservativeDRAMShareHi: 0.45,
		Fig4CombinedReductionLo:     0.50,
		Fig5ConverterReductionLo:    0.25,
		Fig5AcceleratorReductionLo:  0.15,
	}
}
