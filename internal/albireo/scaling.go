// Package albireo instantiates the Albireo photonic CNN accelerator
// [Shiflett et al., ISCA 2021] in the modeling framework, as the paper
// does: component energies follow the Albireo paper's published estimates
// under three technology-scaling projections, and the architecture is a
// documented reconstruction (see DESIGN.md) — 8 clusters, each processing a
// 32-wide output-pixel vector for 3 output channels across a 3x3
// wavelength-parallel window per cycle, with weight-stationary microring
// banks, Mach-Zehnder input modulators, and photodiode + analog
// accumulation + ADC readout.
//
// Absolute energies are calibrated so the best-case per-MAC breakdown
// matches the reported bars of the paper's Fig. 2; every other figure is a
// prediction of the model.
package albireo

import "fmt"

// Scaling selects one of the Albireo paper's technology projections.
type Scaling uint8

// The three scaling projections evaluated in the paper.
const (
	Conservative Scaling = iota
	Moderate
	Aggressive
)

var scalingNames = [...]string{"conservative", "moderate", "aggressive"}

// String names the scaling.
func (s Scaling) String() string {
	if int(s) < len(scalingNames) {
		return scalingNames[s]
	}
	return fmt.Sprintf("Scaling(%d)", uint8(s))
}

// ParseScaling converts a scaling name.
func ParseScaling(name string) (Scaling, error) {
	for i, n := range scalingNames {
		if n == name {
			return Scaling(i), nil
		}
	}
	return 0, fmt.Errorf("albireo: unknown scaling %q", name)
}

// AllScalings lists the projections.
func AllScalings() []Scaling { return []Scaling{Conservative, Moderate, Aggressive} }

// Params holds the per-action component energies of one scaling point.
// Conservative values are calibrated against the reported Fig. 2 breakdown;
// moderate and aggressive apply the Albireo projections' improvement
// factors (optical/converter devices improve faster than SRAM).
type Params struct {
	// MZMModulatePJ is the Mach-Zehnder input modulation energy per
	// symbol.
	MZMModulatePJ float64
	// MRRProgramPJ is the microring weight retuning energy.
	MRRProgramPJ float64
	// MRRTransitPJ is the per-MAC ring pass energy.
	MRRTransitPJ float64
	// PDDetectPJ is the photodiode+TIA detection energy per sample.
	PDDetectPJ float64
	// LaserPerMACPJ is the optical supply energy per MAC.
	LaserPerMACPJ float64
	// InputDACPJPerBit and WeightDACPJPerBit parameterize the 8-bit
	// high-speed DACs on the modulation and ring-programming paths.
	InputDACPJPerBit  float64
	WeightDACPJPerBit float64
	// ADCWaldenFJPerStep parameterizes the 8-bit readout ADC.
	ADCWaldenFJPerStep float64
	// SRAMScale scales the global-buffer technology coefficients.
	SRAMScale float64
	// DRAMPJPerBit is the off-chip access energy (scaling independent —
	// the DRAM does not improve with the photonics).
	DRAMPJPerBit float64
	// ClockGHz is the optical symbol rate.
	ClockGHz float64
}

// ParamsFor returns the parameter set of a scaling projection.
func ParamsFor(s Scaling) Params {
	// Conservative calibration (see package comment).
	p := Params{
		MZMModulatePJ:      4.66,
		MRRProgramPJ:       3.2,
		MRRTransitPJ:       0.20,
		PDDetectPJ:         3.60,
		LaserPerMACPJ:      0.50,
		InputDACPJPerBit:   0.9125,
		WeightDACPJPerBit:  0.125,
		ADCWaldenFJPerStep: 21.1,
		SRAMScale:          1.0,
		DRAMPJPerBit:       35.0,
		ClockGHz:           5.0,
	}
	var optical, sram float64
	switch s {
	case Conservative:
		optical, sram = 1.0, 1.0
	case Moderate:
		optical, sram = 0.465, 0.70
	case Aggressive:
		optical, sram = 0.158, 0.50
	default:
		optical, sram = 1.0, 1.0
	}
	p.MZMModulatePJ *= optical
	p.MRRProgramPJ *= optical
	p.MRRTransitPJ *= optical
	p.PDDetectPJ *= optical
	p.LaserPerMACPJ *= optical
	p.InputDACPJPerBit *= optical
	p.WeightDACPJPerBit *= optical
	p.ADCWaldenFJPerStep *= optical
	p.SRAMScale = sram
	return p
}
