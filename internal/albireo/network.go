package albireo

import (
	"fmt"

	"photoloop/internal/mapper"
	"photoloop/internal/mapping"
	"photoloop/internal/model"
	"photoloop/internal/workload"
)

// NetOptions configures a network evaluation on Albireo.
type NetOptions struct {
	// Batch replicates the workload batch dimension (>= 1). Batching
	// amortizes weight movement (the first Fig. 4 optimization).
	Batch int
	// Fused keeps activations in the global buffer between layers
	// instead of spilling them to DRAM (the second Fig. 4 optimization,
	// after LoopTree). Fusion doubles the global buffer (and grows it
	// further if the activations demand it), charging the larger SRAM's
	// higher per-access energy.
	Fused bool
	// Mapper configures the per-layer search.
	Mapper mapper.Options
	// WarmStarts supplies per-layer-shape incumbent mappings (keyed by
	// workload.Layer.ShapeFingerprint) from structurally related solved
	// evaluations — a neighboring sweep point's bests, typically. They are
	// appended to Mapper.WarmStarts for the matching layers; see
	// mapper.Options.WarmStarts for the semantics.
	WarmStarts map[uint64][]*mapping.Mapping
}

// LayerEval pairs a layer with its best mapping's evaluation.
type LayerEval struct {
	Layer workload.Layer
	Best  *mapper.Best
}

// NetResult is a whole-network evaluation.
type NetResult struct {
	Network string
	Config  Config
	Options NetOptions
	Layers  []LayerEval
	// Total accumulates all layers (energy ledger included).
	Total model.Result
}

// PJPerMAC returns whole-network energy per MAC.
func (r *NetResult) PJPerMAC() float64 { return r.Total.PJPerMAC() }

// EvalNetwork maps and evaluates every layer of the network on the
// configured Albireo instance, applying batching and fusion.
func EvalNetwork(cfg Config, net workload.Network, opts NetOptions) (*NetResult, error) {
	if opts.Batch < 1 {
		opts.Batch = 1
	}
	work := net.WithBatch(opts.Batch)
	if err := work.Validate(); err != nil {
		return nil, err
	}

	res := &NetResult{Network: net.Name, Config: cfg, Options: opts}
	res.Total.Layer = net.Name

	// The architecture is identical for every layer unless fusion changes
	// which tensors the DRAM backs — and even then only the first and last
	// layers differ. Build each distinct architecture (and the mapper
	// session caching its invariants) once and share it across layers.
	sessions := map[workload.TensorSet]*mapper.Session{}
	sessionFor := func(i int) (*mapper.Session, error) {
		lcfg := cfg
		if opts.Fused {
			// Activations stay on chip: DRAM backs weights always,
			// inputs only for the first layer, outputs only for the
			// last.
			keeps := workload.NewTensorSet(workload.Weights)
			if i == 0 {
				keeps = keeps.With(workload.Inputs)
			}
			if i == len(work.Layers)-1 {
				keeps = keeps.With(workload.Outputs)
			}
			lcfg.DRAMKeeps = keeps
			lcfg.GLBMiB = fusedGLBMiB(cfg.GLBMiB, &work, opts.Batch)
		}
		if s, ok := sessions[lcfg.DRAMKeeps]; ok {
			return s, nil
		}
		a, err := lcfg.Build()
		if err != nil {
			return nil, fmt.Errorf("albireo: building arch: %w", err)
		}
		s, err := mapper.NewSession(a)
		if err != nil {
			return nil, fmt.Errorf("albireo: preparing mapper: %w", err)
		}
		sessions[lcfg.DRAMKeeps] = s
		return s, nil
	}

	// One search per distinct (session, layer shape): a search outcome
	// depends only on the layer's shape and the options (the canonical
	// seed mappings are themselves shape properties), so repeated blocks
	// reuse the representative's result — bit-identical to re-searching,
	// and it skips both the search and the per-layer seed construction.
	type searchKey struct {
		sess  *mapper.Session
		shape uint64
	}
	solved := map[searchKey]*mapper.Best{}
	for i := range work.Layers {
		layer := work.Layers[i]
		sess, err := sessionFor(i)
		if err != nil {
			return nil, fmt.Errorf("albireo: %s: %w", layer.Name, err)
		}
		key := searchKey{sess, layer.ShapeFingerprint()}
		var best *mapper.Best
		if prior, ok := solved[key]; ok {
			best = prior.CloneFor(layer.Name)
		} else {
			a := sess.Engine().Arch()
			mopts := opts.Mapper
			mopts.Seeds = append(CanonicalMappings(a, &layer), mopts.Seeds...)
			if opts.WarmStarts != nil {
				mopts.WarmStarts = append(opts.WarmStarts[layer.ShapeFingerprint()], mopts.WarmStarts...)
			}
			best, err = sess.Search(&layer, mopts)
			if err != nil {
				return nil, fmt.Errorf("albireo: mapping %s: %w", layer.Name, err)
			}
			solved[key] = best
		}
		res.Layers = append(res.Layers, LayerEval{Layer: layer, Best: best})
		res.Total.Accumulate(best.Result)
	}
	return res, nil
}

// fusedGLBMiB sizes the fused global buffer: at least double the baseline
// (the paper's trade-off) and large enough for the biggest inter-layer
// activation working set plus headroom for weights and the second
// activation tensor.
func fusedGLBMiB(baseMiB int, net *workload.Network, batch int) int {
	need := int64(0)
	for i := range net.Layers {
		l := &net.Layers[i]
		words := l.TensorElems(workload.Inputs) + l.TensorElems(workload.Outputs) + l.TensorElems(workload.Weights)
		if words > need {
			need = words
		}
	}
	needMiB := int((need + (1 << 20) - 1) >> 20) // 8-bit words -> MiB
	mib := 2 * baseMiB
	// Round the activation demand up with 50% headroom for tiling slack.
	for mib < needMiB+needMiB/2+1 {
		mib *= 2
	}
	return mib
}

// ThroughputMACsPerCycle returns the whole-network achieved throughput:
// total real MACs divided by total cycles.
func (r *NetResult) ThroughputMACsPerCycle() float64 {
	if r.Total.Cycles == 0 {
		return 0
	}
	return float64(r.Total.MACs) / r.Total.Cycles
}

// DRAMShare returns the DRAM fraction of total energy.
func (r *NetResult) DRAMShare() float64 {
	if r.Total.TotalPJ == 0 {
		return 0
	}
	breakdown := RoleBreakdown(&r.Total)
	return breakdown[RoleDRAM] / r.Total.TotalPJ
}
