package albireo

import (
	"fmt"

	"photoloop/internal/arch"
	"photoloop/internal/mapping"
	"photoloop/internal/workload"
)

// CanonicalMappings builds the architect-intended schedules for a layer on
// an Albireo instance: rigid spatial factors greedily assigned to the
// largest-remaining dimensions, pixel loops at the modulated-input station
// (keeping the ring banks weight stationary), operand channels in the
// global buffer, and — when the global buffer cannot hold the full working
// set — spill variants that stream K and/or split C at DRAM. Only variants
// that validate are returned; the paper's best-case (Fig. 2) layer fits
// entirely, so its first variant has no DRAM loops at all.
func CanonicalMappings(a *arch.Arch, l *workload.Layer) []*mapping.Mapping {
	var out []*mapping.Mapping
	base := mapping.New(a)
	assignSpatialGreedy(a, base, l)
	out = append(out, canonicalForAssignment(a, base, l)...)
	// Channel-parallel alternate: wide lane factors that can carry C
	// serve input channels instead of pixels. This trades window-overlap
	// input sharing for ring stationarity (each lane owns its C-slice's
	// weights) — often the better deal for deep, small-feature layers.
	if alt := channelParallelAssignment(a, base, l); alt != nil {
		out = append(out, canonicalForAssignment(a, alt, l)...)
	}
	return out
}

// channelParallelAssignment flips lane-like factors (fan-out >= 8) that
// allow C onto C, when the layer has channels to spare. Returns nil if
// nothing changes.
func channelParallelAssignment(a *arch.Arch, base *mapping.Mapping, l *workload.Layer) *mapping.Mapping {
	alt := base.Clone()
	changed := false
	remC := l.C
	for i := 0; i < a.NumLevels(); i++ {
		lv := a.Level(i)
		for j := range lv.Spatial {
			f := &lv.Spatial[j]
			if alt.Levels[i].SpatialChoice[j] == workload.DimC {
				if remC <= 1 && len(f.Dims) > 1 {
					// No channels left for this factor: release it to
					// its next-preferred dimension.
					for _, d := range f.Dims {
						if d != workload.DimC {
							alt.Levels[i].SpatialChoice[j] = d
							changed = true
							break
						}
					}
				} else {
					remC = workload.CeilDiv(remC, f.Count)
				}
				continue
			}
			// Tolerate up to 2x lane padding: ring stationarity often
			// outweighs half-empty lanes.
			if f.Count >= 8 && f.Allows(workload.DimC) && 2*remC >= f.Count {
				alt.Levels[i].SpatialChoice[j] = workload.DimC
				remC = workload.CeilDiv(remC, f.Count)
				changed = true
			}
		}
	}
	if !changed {
		return nil
	}
	return alt
}

func canonicalForAssignment(a *arch.Arch, base *mapping.Mapping, l *workload.Layer) []*mapping.Mapping {
	// Remaining per-dimension bounds after spatial coverage.
	spatial := workload.Ones()
	for i := 0; i < a.NumLevels(); i++ {
		spatial = spatial.Mul(base.SpatialAt(a, i))
	}
	rem := workload.Ones()
	for _, d := range workload.AllDims() {
		rem[d] = workload.CeilDiv(l.Bound(d), spatial[d])
	}

	_, modIdx, err := a.LevelByName("ModulatedInput")
	if err != nil {
		modIdx = a.NumLevels() - 1
	}
	_, glbIdx, err := a.LevelByName("GlobalBuffer")
	if err != nil {
		glbIdx = 1
	}

	// Loop order at the buffer levels: K and C outside N (weights stay
	// programmed across the batch), pixels below at the input station.
	bufferPerm := []workload.Dim{workload.DimK, workload.DimC, workload.DimN,
		workload.DimP, workload.DimQ, workload.DimR, workload.DimS}

	build := func(kSplit, cSplit, pSplit int, nAtDRAM bool) *mapping.Mapping {
		m := base.Clone()
		for i := range m.Levels {
			m.Levels[i].Perm = append(m.Levels[i].Perm[:0], bufferPerm...)
		}
		// Pixels iterate at the modulated-input station; a P-split tiles
		// the output rows at DRAM so large early-layer activations can
		// stream through a small buffer without spilling partial sums.
		m.Levels[0].Temporal[workload.DimP] = pSplit
		m.Levels[modIdx].Temporal[workload.DimP] = workload.CeilDiv(rem[workload.DimP], pSplit)
		m.Levels[modIdx].Temporal[workload.DimQ] = rem[workload.DimQ]
		// Window taps not covered spatially iterate at the station too
		// (strided/large-filter layers fold extra R/S passes).
		m.Levels[modIdx].Temporal[workload.DimR] = rem[workload.DimR]
		m.Levels[modIdx].Temporal[workload.DimS] = rem[workload.DimS]
		// Channels and batch at the global buffer, spills at DRAM. The
		// buffer permutation keeps N inside K and C, so spilled weight
		// chunks are fetched once and reused across the batch.
		m.Levels[glbIdx].Temporal[workload.DimK] = workload.CeilDiv(rem[workload.DimK], kSplit)
		m.Levels[glbIdx].Temporal[workload.DimC] = workload.CeilDiv(rem[workload.DimC], cSplit)
		m.Levels[0].Temporal[workload.DimK] = kSplit
		m.Levels[0].Temporal[workload.DimC] = cSplit
		if nAtDRAM {
			m.Levels[0].Temporal[workload.DimN] = rem[workload.DimN]
		} else {
			m.Levels[glbIdx].Temporal[workload.DimN] = rem[workload.DimN]
		}
		return m
	}

	var out []*mapping.Mapping
	tryAdd := func(m *mapping.Mapping) {
		// Valid, not Validate: most split variants fail some rule, and
		// formatting each rejection dominated seed construction.
		if m.Valid(a, l) {
			out = append(out, m)
		}
	}
	splits := []int{1, 2, 4, 8, 16, 32, 64, 128}
	for _, kSplit := range splits {
		if kSplit > rem[workload.DimK] && kSplit != 1 {
			break
		}
		for _, cSplit := range splits {
			if cSplit > rem[workload.DimC] && cSplit != 1 {
				break
			}
			tryAdd(build(kSplit, cSplit, 1, false))
			if rem[workload.DimN] > 1 {
				tryAdd(build(kSplit, cSplit, 1, true))
			}
		}
		// Output-row tiling for layers whose activations exceed the
		// buffer (streams input halo tiles, never spills partial sums).
		for _, pSplit := range splits[1:] {
			if pSplit > rem[workload.DimP] {
				break
			}
			tryAdd(build(kSplit, 1, pSplit, false))
			if rem[workload.DimN] > 1 {
				tryAdd(build(kSplit, 1, pSplit, true))
			}
		}
	}
	return out
}

// assignSpatialGreedy assigns every rigid factor to its allowed dimension
// with the largest remaining bound, walking levels outside in — the same
// choice a designer would make to minimize padding (e.g. Albireo's
// wavelength slots carry R/S for convolutions but C for 1x1 and FC layers).
func assignSpatialGreedy(a *arch.Arch, m *mapping.Mapping, l *workload.Layer) {
	remaining := l.Bounds()
	for i := 0; i < a.NumLevels(); i++ {
		lv := a.Level(i)
		for j := range lv.Spatial {
			f := &lv.Spatial[j]
			best := f.Dims[0]
			bestScore := -1.0
			for _, d := range f.Dims {
				// Utilization if this factor serves d.
				covered := f.Count
				if covered > remaining[d] {
					covered = remaining[d]
				}
				score := float64(covered) / float64(f.Count)
				if score > bestScore {
					best, bestScore = d, score
				}
			}
			m.Levels[i].SpatialChoice[j] = best
			remaining[best] = workload.CeilDiv(remaining[best], f.Count)
		}
	}
}

// CanonicalBest evaluates the canonical variants and returns the one with
// the lowest total energy, as a deterministic, mapper-free reference
// schedule.
func CanonicalBest(a *arch.Arch, l *workload.Layer) (*mapping.Mapping, error) {
	cands := CanonicalMappings(a, l)
	if len(cands) == 0 {
		return nil, fmt.Errorf("albireo: no canonical mapping validates for %s on %s", l.Name, a.Name)
	}
	return cands[0], nil
}
