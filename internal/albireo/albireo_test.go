package albireo

import (
	"math"
	"strings"
	"testing"

	"photoloop/internal/mapper"
	"photoloop/internal/model"
	"photoloop/internal/workload"
)

func TestScalingNames(t *testing.T) {
	for _, s := range AllScalings() {
		got, err := ParseScaling(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScaling(%s) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScaling("hyper"); err == nil {
		t.Error("ParseScaling(hyper) succeeded")
	}
}

func TestParamsScaleMonotonically(t *testing.T) {
	cons := ParamsFor(Conservative)
	mod := ParamsFor(Moderate)
	agg := ParamsFor(Aggressive)
	checks := []struct {
		name string
		f    func(Params) float64
	}{
		{"MZM", func(p Params) float64 { return p.MZMModulatePJ }},
		{"MRRProgram", func(p Params) float64 { return p.MRRProgramPJ }},
		{"PD", func(p Params) float64 { return p.PDDetectPJ }},
		{"Laser", func(p Params) float64 { return p.LaserPerMACPJ }},
		{"InputDAC", func(p Params) float64 { return p.InputDACPJPerBit }},
		{"ADC", func(p Params) float64 { return p.ADCWaldenFJPerStep }},
		{"SRAM", func(p Params) float64 { return p.SRAMScale }},
	}
	for _, c := range checks {
		if !(c.f(cons) > c.f(mod) && c.f(mod) > c.f(agg)) {
			t.Errorf("%s does not scale down: %g %g %g", c.name, c.f(cons), c.f(mod), c.f(agg))
		}
	}
	// DRAM does not improve with photonic scaling.
	if cons.DRAMPJPerBit != agg.DRAMPJPerBit {
		t.Error("DRAM energy should be scaling independent")
	}
}

func TestDefaultConfig(t *testing.T) {
	c := Default(Conservative)
	if c.IR() != 9 || c.OR() != 3 {
		t.Errorf("default IR=%d OR=%d, want 9 and 3", c.IR(), c.OR())
	}
	if c.PeakMACsPerCycle() != 6912 {
		t.Errorf("peak = %d, want 6912 (8 clusters x 32 lanes x 3 K x 9 slots)", c.PeakMACsPerCycle())
	}
}

func TestBuildValidatesArch(t *testing.T) {
	for _, s := range AllScalings() {
		for _, wr := range []bool{false, true} {
			c := Default(s)
			c.WeightReuse = wr
			a, err := c.Build()
			if err != nil {
				t.Fatalf("%s wr=%v: %v", s, wr, err)
			}
			if err := a.Validate(); err != nil {
				t.Errorf("%s wr=%v: %v", s, wr, err)
			}
			if gaps := a.DomainGaps(); len(gaps) != 0 {
				t.Errorf("%s wr=%v: domain gaps: %v", s, wr, gaps)
			}
			if a.PeakMACsPerCycle() != c.PeakMACsPerCycle() {
				t.Errorf("%s wr=%v: arch peak %d != config peak %d",
					s, wr, a.PeakMACsPerCycle(), c.PeakMACsPerCycle())
			}
			if area, err := a.Area(); err != nil || area <= 0 {
				t.Errorf("%s wr=%v: area %g, %v", s, wr, area, err)
			}
		}
	}
}

func TestBuildRejectsBadConfigs(t *testing.T) {
	bad := Default(Conservative)
	bad.Clusters = 0
	if _, err := bad.Build(); err == nil {
		t.Error("accepted 0 clusters")
	}
	bad = Default(Conservative)
	bad.GLBMiB = 0
	if _, err := bad.Build(); err == nil {
		t.Error("accepted 0 GLB")
	}
	bad = Default(Conservative)
	bad.WordBits = 0
	if _, err := bad.Build(); err == nil {
		t.Error("accepted 0 word bits")
	}
}

func TestReuseVariantsScalePeak(t *testing.T) {
	c := Default(Aggressive)
	c.OutputLanes = 9 // IR = 27
	c.ORLanes = 3     // OR = 9
	if c.IR() != 27 || c.OR() != 9 {
		t.Fatalf("IR=%d OR=%d", c.IR(), c.OR())
	}
	a, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := a.PeakMACsPerCycle(), int64(8*32*9*9*3); got != want {
		t.Errorf("peak = %d, want %d", got, want)
	}
}

func TestCanonicalMappingsValidate(t *testing.T) {
	layers := []workload.Layer{
		workload.NewConv("conv3x3", 1, 128, 128, 28, 28, 3, 3, 1, 1),
		workload.NewConv("conv7x7s2", 1, 64, 3, 112, 112, 7, 7, 2, 3),
		workload.NewConv("conv1x1s2", 1, 128, 64, 28, 28, 1, 1, 2, 0),
		workload.NewFC("fc", 1, 1000, 512),
		workload.NewConv("batched", 8, 64, 64, 56, 56, 3, 3, 1, 1),
	}
	for _, wr := range []bool{false, true} {
		c := Default(Aggressive)
		c.WeightReuse = wr
		a, err := c.Build()
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range layers {
			cands := CanonicalMappings(a, &l)
			if len(cands) == 0 {
				t.Errorf("wr=%v %s: no canonical mapping", wr, l.Name)
				continue
			}
			for _, m := range cands {
				if err := m.Validate(a, &l); err != nil {
					t.Errorf("wr=%v %s: invalid canonical mapping: %v", wr, l.Name, err)
				}
			}
			if _, err := CanonicalBest(a, &l); err != nil {
				t.Errorf("wr=%v %s: %v", wr, l.Name, err)
			}
		}
	}
}

func TestCanonicalKeepsRingsStationary(t *testing.T) {
	// The canonical schedule programs each ring once per weight: total
	// programs = weights x pixel-lane duplication, not x pixel steps.
	a, err := Default(Conservative).Build()
	if err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("l", 1, 96, 64, 32, 32, 3, 3, 1, 1)
	m, err := CanonicalBest(a, &l)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.Evaluate(a, &l, m, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := res.UsageOf("RingBank", workload.Weights)
	if u == nil {
		t.Fatal("no ring bank usage")
	}
	weights := float64(l.TensorElems(workload.Weights))
	dup := 32.0 // pixel lanes replicate each weight
	if math.Abs(u.Fills-weights*dup) > 1e-6 {
		t.Errorf("ring programs = %g, want %g (weights x 32 lanes)", u.Fills, weights*dup)
	}
}

func TestFig2BinClassification(t *testing.T) {
	cases := []struct {
		class, action, tensor string
		want                  Fig2Bin
	}{
		{"mrr", "program", "Weights", BinMRR},
		{"mzm", "modulate", "Inputs", BinMZM},
		{"laser", "supply", "", BinLaser},
		{"photodiode", "detect", "Outputs", BinAOAE},
		{"dac", "convert", "Inputs", BinDEAE},
		{"adc", "convert", "Outputs", BinAEDE},
		{"sram", "read", "Inputs", BinCache},
		{"dram", "read", "Weights", BinDRAM},
		{"wire", "transfer", "", BinOther},
	}
	for _, c := range cases {
		e := model.EnergyItem{Class: c.class, Action: c.action, Tensor: c.tensor}
		if got := ClassifyFig2(&e); got != c.want {
			t.Errorf("ClassifyFig2(%s) = %v, want %v", c.class, got, c.want)
		}
	}
}

func TestRoleBinClassification(t *testing.T) {
	cases := []struct {
		class, action, tensor string
		want                  RoleBin
	}{
		{"mrr", "program", "Weights", RoleWeightConv},
		{"mrr", "transit", "", RoleOtherAO},
		{"mzm", "modulate", "Inputs", RoleInputConv},
		{"laser", "supply", "", RoleOtherAO},
		{"photodiode", "detect", "Outputs", RoleOutputConv},
		{"adc", "convert", "Outputs", RoleOutputConv},
		{"dac", "convert", "Weights", RoleWeightConv},
		{"dac", "convert", "Inputs", RoleInputConv},
		{"sram", "read", "Inputs", RoleBuffer},
		{"dram", "write", "Outputs", RoleDRAM},
	}
	for _, c := range cases {
		e := model.EnergyItem{Class: c.class, Action: c.action, Tensor: c.tensor}
		if got := ClassifyRole(&e); got != c.want {
			t.Errorf("ClassifyRole(%s/%s) = %v, want %v", c.class, c.action, got, c.want)
		}
	}
}

func TestBreakdownsSumToTotal(t *testing.T) {
	a, err := Default(Moderate).Build()
	if err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("l", 1, 96, 64, 32, 32, 3, 3, 1, 1)
	m, err := CanonicalBest(a, &l)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.Evaluate(a, &l, m, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var f2, role float64
	for _, v := range Fig2Breakdown(res) {
		f2 += v
	}
	for _, v := range RoleBreakdown(res) {
		role += v
	}
	if math.Abs(f2-res.TotalPJ) > 1e-6 || math.Abs(role-res.TotalPJ) > 1e-6 {
		t.Errorf("breakdowns don't cover the ledger: fig2 %g role %g total %g", f2, role, res.TotalPJ)
	}
	if AcceleratorPJ(res) >= res.TotalPJ {
		t.Error("accelerator energy should exclude DRAM")
	}
	if ConverterPJ(res) <= 0 || ConverterPJ(res) >= res.TotalPJ {
		t.Errorf("converter energy %g out of range (total %g)", ConverterPJ(res), res.TotalPJ)
	}
}

func TestReportedTablesComplete(t *testing.T) {
	for _, s := range AllScalings() {
		rep := ReportedFig2(s)
		for _, bin := range Fig2Bins() {
			if rep[bin] <= 0 {
				t.Errorf("%s: reported %s missing", s, bin)
			}
		}
		if tot := ReportedFig2Total(s); tot <= 0 {
			t.Errorf("%s: zero reported total", s)
		}
	}
	// Reported totals must decrease with more aggressive scaling.
	if !(ReportedFig2Total(Conservative) > ReportedFig2Total(Moderate) &&
		ReportedFig2Total(Moderate) > ReportedFig2Total(Aggressive)) {
		t.Error("reported totals not monotone across scalings")
	}
	refs := ReportedFig3()
	for _, name := range []string{"vgg16", "alexnet"} {
		r, ok := refs[name]
		if !ok || r.Ideal <= 0 || r.Reported <= 0 || r.Reported > r.Ideal {
			t.Errorf("fig3 reference for %s broken: %+v", name, r)
		}
	}
}

func TestEvalNetworkBatchAmortizesWeights(t *testing.T) {
	net := workload.Network{Name: "mini", Layers: []workload.Layer{
		workload.NewConv("c1", 1, 64, 64, 28, 28, 3, 3, 1, 1),
		workload.NewConv("c2", 1, 64, 64, 28, 28, 3, 3, 1, 1),
	}}
	cfg := Default(Aggressive)
	opts := mapper.Options{Budget: 400, Seed: 1}
	b1, err := EvalNetwork(cfg, net, NetOptions{Batch: 1, Mapper: opts})
	if err != nil {
		t.Fatal(err)
	}
	b8, err := EvalNetwork(cfg, net, NetOptions{Batch: 8, Mapper: opts})
	if err != nil {
		t.Fatal(err)
	}
	if b8.Total.MACs != 8*b1.Total.MACs {
		t.Fatalf("batch-8 MACs = %d, want %d", b8.Total.MACs, 8*b1.Total.MACs)
	}
	w1 := RoleBreakdown(&b1.Total)[RoleDRAM] / float64(b1.Total.MACs)
	w8 := RoleBreakdown(&b8.Total)[RoleDRAM] / float64(b8.Total.MACs)
	if w8 >= w1 {
		t.Errorf("batching did not reduce DRAM energy per MAC: %g vs %g", w8, w1)
	}
}

func TestEvalNetworkFusionRemovesActivationDRAM(t *testing.T) {
	net := workload.Network{Name: "mini", Layers: []workload.Layer{
		workload.NewConv("c1", 1, 64, 64, 28, 28, 3, 3, 1, 1),
		workload.NewConv("c2", 1, 64, 64, 28, 28, 3, 3, 1, 1),
		workload.NewConv("c3", 1, 64, 64, 28, 28, 3, 3, 1, 1),
	}}
	cfg := Default(Aggressive)
	opts := mapper.Options{Budget: 400, Seed: 1}
	plain, err := EvalNetwork(cfg, net, NetOptions{Batch: 1, Mapper: opts})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := EvalNetwork(cfg, net, NetOptions{Batch: 1, Fused: true, Mapper: opts})
	if err != nil {
		t.Fatal(err)
	}
	if fused.DRAMShare() >= plain.DRAMShare() {
		t.Errorf("fusion did not reduce DRAM share: %g vs %g", fused.DRAMShare(), plain.DRAMShare())
	}
	// Fusion buys DRAM savings with a larger, more expensive buffer.
	pb := RoleBreakdown(&plain.Total)[RoleBuffer] / float64(plain.Total.MACs)
	fb := RoleBreakdown(&fused.Total)[RoleBuffer] / float64(fused.Total.MACs)
	if fb <= pb {
		t.Errorf("fused buffer energy %g should exceed plain %g", fb, pb)
	}
	// The middle layer's DRAM usage should carry no activation traffic:
	// its arch keeps only weights in DRAM.
	mid := fused.Layers[1]
	for _, u := range mid.Best.Result.Usage {
		if u.Level == "DRAM" && u.Tensor != workload.Weights {
			t.Errorf("fused middle layer has DRAM usage for %v", u.Tensor)
		}
	}
}

func TestEvalNetworkThroughput(t *testing.T) {
	net := workload.Network{Name: "mini", Layers: []workload.Layer{
		workload.NewConv("c1", 1, 64, 64, 28, 28, 3, 3, 1, 1),
	}}
	res, err := EvalNetwork(Default(Conservative), net, NetOptions{Mapper: mapper.Options{Budget: 300, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if tp := res.ThroughputMACsPerCycle(); tp <= 0 || tp > 6912 {
		t.Errorf("throughput = %g", tp)
	}
	if res.PJPerMAC() <= 0 {
		t.Error("non-positive energy")
	}
}

func TestArchNamesEncodeVariant(t *testing.T) {
	c := Default(Aggressive)
	c.OutputLanes = 9
	c.ORLanes = 3
	c.WeightReuse = true
	a, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"aggressive", "ir27", "or9", "wrtrue"} {
		if !strings.Contains(a.Name, want) {
			t.Errorf("arch name %q missing %q", a.Name, want)
		}
	}
}

func TestLaserFromBudget(t *testing.T) {
	// The physical link-budget laser should land within a factor of a
	// few of the calibrated conservative constant (0.5 pJ/MAC) — the
	// calibration is supposed to be physically plausible.
	c := Default(Conservative)
	c.LaserFromBudget = true
	a, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	laser, err := a.Lib.Get("CombLaser")
	if err != nil {
		t.Fatal(err)
	}
	pj, err := laser.Energy("supply")
	if err != nil {
		t.Fatal(err)
	}
	if pj < 0.05 || pj > 5 {
		t.Errorf("budget-derived laser = %g pJ/MAC, implausible vs calibrated 0.5", pj)
	}

	// Fan-out invariance: the IR-way split loss grows linearly with IR
	// while the carrier feeds IR multipliers, so per-MAC laser energy is
	// IR-invariant (the split loss and the amortization cancel exactly).
	c27 := c
	c27.OutputLanes = 9 // IR = 27
	a27, err := c27.Build()
	if err != nil {
		t.Fatal(err)
	}
	laser27, _ := a27.Lib.Get("CombLaser")
	pj27, _ := laser27.Energy("supply")
	if math.Abs(pj27-pj)/pj > 1e-9 {
		t.Errorf("per-MAC laser energy should be IR-invariant: IR9 %g vs IR27 %g", pj, pj27)
	}

	// Weight reuse adds a real distribution stage: per-MAC laser rises.
	cwr := c
	cwr.WeightReuse = true
	awr, err := cwr.Build()
	if err != nil {
		t.Fatal(err)
	}
	laserWR, _ := awr.Lib.Get("CombLaser")
	pjWR, _ := laserWR.Energy("supply")
	if pjWR <= pj {
		t.Errorf("weight-reuse laser %g should exceed original %g", pjWR, pj)
	}
}

func TestLinkBudgetComposition(t *testing.T) {
	c := Default(Conservative)
	b := LinkBudget(c)
	// Fixed losses (6.5 dB) plus the 9-way split (~9.5 dB).
	want := 6.5 + 10*math.Log10(9)
	if math.Abs(b.TotalDB()-want) > 1e-9 {
		t.Errorf("budget = %.2f dB, want %.2f", b.TotalDB(), want)
	}
	c.WeightReuse = true
	if LinkBudget(c).TotalDB() <= b.TotalDB() {
		t.Error("weight-reuse budget should add loss")
	}
}
