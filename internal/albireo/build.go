package albireo

import (
	"fmt"

	"photoloop/internal/arch"
	"photoloop/internal/components"
	"photoloop/internal/workload"
)

// Config parameterizes an Albireo instance. The zero value is not valid;
// start from Default.
type Config struct {
	// Scaling selects the technology projection.
	Scaling Scaling
	// Clusters is the number of photonic clusters (8 in Albireo).
	Clusters int
	// PixelLanes is the output-pixel vector width per cluster (32).
	PixelLanes int
	// OutputLanes is the number of output channels sharing one modulated
	// input via the star coupler. IR = 3 * OutputLanes (the factor 3 is
	// the window-column overlap): the paper's IR in {9, 27, 45} maps to
	// OutputLanes in {3, 9, 15}.
	OutputLanes int
	// ORLanes is the number of input-channel slices whose photocurrents
	// merge in the analog-electrical domain before one ADC sample.
	// OR = 3 * ORLanes: the paper's OR in {3, 9, 15} maps to ORLanes in
	// {1, 3, 5}.
	ORLanes int
	// WeightReuse moves the pixel-lane fan-out below the ring bank so a
	// programmed weight serves all lanes (the paper's "more weight
	// reuse" variants), at the cost of extra optical distribution loss.
	WeightReuse bool
	// WeightReuseLaserFactor inflates laser energy in WeightReuse mode
	// (extra star-coupler stage after the rings); default 1.6.
	WeightReuseLaserFactor float64
	// LaserFromBudget derives the laser's per-MAC energy from the
	// physical optical link budget (coupling, modulator and ring
	// insertion losses, star-coupler split, detector sensitivity, wall
	// plug efficiency) instead of the calibrated constant. The split
	// loss grows linearly with the IR fan-out while the carrier is
	// shared by IR multipliers, so per-MAC laser energy is
	// fan-out-invariant up to excess losses — a physical sanity check on
	// the reuse exploration.
	LaserFromBudget bool
	// GLBMiB sizes the global buffer (default 4).
	GLBMiB int
	// DRAMBWWordsPerCycle bounds DRAM bandwidth (default 32).
	DRAMBWWordsPerCycle float64
	// DRAMKeeps restricts which tensors the DRAM backs; the network
	// evaluator uses this for layer fusion. Zero value means all.
	DRAMKeeps workload.TensorSet
	// WordBits is the operand precision (default 8).
	WordBits int
}

// Default returns the original Albireo configuration at a scaling point:
// 8 clusters x 32 pixel lanes x 3 output lanes x 9 window slots = 6912
// MACs/cycle, IR=9, OR=3.
func Default(s Scaling) Config {
	return Config{
		Scaling:                s,
		Clusters:               8,
		PixelLanes:             32,
		OutputLanes:            3,
		ORLanes:                1,
		WeightReuseLaserFactor: 1.6,
		GLBMiB:                 1,
		DRAMBWWordsPerCycle:    32,
		DRAMKeeps:              workload.AllTensorSet(),
		WordBits:               8,
	}
}

// IR returns the input-reuse factor of the paper's Fig. 5 (number of
// multipliers sharing one modulated input).
func (c Config) IR() int { return 3 * c.OutputLanes }

// OR returns the output-reuse factor of the paper's Fig. 5 (number of
// analog partial sums merged per ADC sample).
func (c Config) OR() int { return 3 * c.ORLanes }

// PeakMACsPerCycle returns the compute width of the configuration.
func (c Config) PeakMACsPerCycle() int64 {
	return int64(c.Clusters) * int64(c.PixelLanes) * int64(c.OutputLanes) * 9 * int64(c.ORLanes)
}

func (c Config) validate() error {
	if c.Clusters < 1 || c.PixelLanes < 1 || c.OutputLanes < 1 || c.ORLanes < 1 {
		return fmt.Errorf("albireo: cluster/lane counts must be >= 1: %+v", c)
	}
	if c.GLBMiB < 1 {
		return fmt.Errorf("albireo: GLBMiB = %d, want >= 1", c.GLBMiB)
	}
	if c.WordBits < 1 {
		return fmt.Errorf("albireo: WordBits = %d, want >= 1", c.WordBits)
	}
	return nil
}

// Build constructs the architecture.
func (c Config) Build() (*arch.Arch, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	p := ParamsFor(c.Scaling)
	lib := components.NewLibrary()
	add := func(comp components.Component, err error) error {
		if err != nil {
			return err
		}
		return lib.Add(comp)
	}
	laser, err := c.buildLaser(p)
	if err != nil {
		return nil, err
	}
	glbBits := int64(c.GLBMiB) << 23
	if err := errFirst(
		add(components.NewDRAM(components.DRAMSpec{Name: "DRAM", PJPerBit: p.DRAMPJPerBit, AccessBits: c.WordBits})),
		add(components.NewSRAM(components.SRAMSpec{
			Name:            "GlobalBuffer",
			CapacityBits:    glbBits,
			AccessBits:      c.WordBits,
			Banks:           16,
			BitPJPerSqrtKiB: 0.009 * p.SRAMScale,
			BitPJFloor:      0.02 * p.SRAMScale,
		})),
		add(components.NewDAC(components.DACSpec{Name: "InputDAC", Bits: c.WordBits, PJPerBit: p.InputDACPJPerBit})),
		add(components.NewDAC(components.DACSpec{Name: "WeightDAC", Bits: c.WordBits, PJPerBit: p.WeightDACPJPerBit})),
		add(components.NewADC(components.ADCSpec{Name: "ReadoutADC", Bits: c.WordBits, WaldenFJPerStep: p.ADCWaldenFJPerStep})),
		add(components.NewMZM(components.MZMSpec{Name: "InputMZM", ModulatePJ: p.MZMModulatePJ})),
		add(components.NewMRR(components.MRRSpec{Name: "WeightMRR", ProgramPJ: p.MRRProgramPJ, TransitPJ: p.MRRTransitPJ})),
		add(components.NewPhotodiode(components.PhotodiodeSpec{Name: "OutputPD", DetectPJ: p.PDDetectPJ, SensitivityMW: detectorSensitivityMW})),
		lib.Add(laser),
	); err != nil {
		return nil, err
	}

	dramKeeps := c.DRAMKeeps
	if dramKeeps.Empty() {
		dramKeeps = workload.AllTensorSet()
	}

	dram := arch.Level{
		Name: "DRAM", Domain: arch.DE,
		Keeps:                  dramKeeps,
		AccessComponent:        "DRAM",
		BandwidthWordsPerCycle: c.DRAMBWWordsPerCycle,
	}
	glb := arch.Level{
		Name: "GlobalBuffer", Domain: arch.DE,
		Keeps:           workload.AllTensorSet(),
		AccessComponent: "GlobalBuffer",
		CapacityBits:    glbBits,
		Spatial: []arch.SpatialFactor{
			arch.Choice(c.Clusters, workload.DimC, workload.DimK, workload.DimN),
		},
	}
	modIn := arch.Level{
		Name: "ModulatedInput", Domain: arch.AO,
		Keeps:               workload.NewTensorSet(workload.Inputs),
		Streaming:           true,
		InputOverlapSharing: true,
		FillVia: map[workload.Tensor][]arch.ActionRef{
			workload.Inputs: {
				{Component: "InputDAC", Action: components.ActionConvert},
				{Component: "InputMZM", Action: components.ActionModulate},
			},
		},
	}
	accum := arch.Level{
		Name: "AnalogAccum", Domain: arch.AE,
		Keeps:    workload.NewTensorSet(workload.Outputs),
		WordBits: 24,
		// One capacitor per OR lane: when the lanes carry a reduction
		// dimension (C) their photocurrents merge into one slot; when
		// they carry K each lane accumulates its own output.
		CapacityBits:       24 * int64(c.ORLanes),
		MaxTemporalProduct: 1,
		Spatial: []arch.SpatialFactor{
			arch.Choice(c.ORLanes, workload.DimC, workload.DimK),
		},
		DrainVia: map[workload.Tensor][]arch.ActionRef{
			workload.Outputs: {{Component: "ReadoutADC", Action: components.ActionConvert}},
		},
	}
	pdSum := arch.Level{
		Name: "PDSum", Domain: arch.AE,
		Keeps:              workload.NewTensorSet(workload.Outputs),
		WordBits:           24,
		CapacityBits:       24,
		MaxTemporalProduct: 1,
		Spatial: []arch.SpatialFactor{
			arch.Choice(3, workload.DimS, workload.DimC),
			arch.Choice(3, workload.DimR, workload.DimC),
		},
		UpdateVia: map[workload.Tensor][]arch.ActionRef{
			workload.Outputs: {{Component: "OutputPD", Action: components.ActionDetect}},
		},
	}
	ringBank := arch.Level{
		Name: "RingBank", Domain: arch.AO,
		Keeps:              workload.NewTensorSet(workload.Weights),
		MaxTemporalProduct: 1,
		FillVia: map[workload.Tensor][]arch.ActionRef{
			workload.Weights: {
				{Component: "WeightDAC", Action: components.ActionConvert},
				{Component: "WeightMRR", Action: components.ActionProgram},
			},
		},
	}

	var levels []arch.Level
	if !c.WeightReuse {
		// Original topology: each pixel lane has its own ring; the
		// modulated input fans out across output lanes and overlapping
		// window columns (IR). Pixel lanes are positional — their
		// locally-connected optical distribution delivers per-lane
		// (overlapping) inputs, so they can serve pixel or batch
		// dimensions but cannot broadcast one input to every lane (that
		// is what the output-lane star coupler is for).
		modIn.Spatial = []arch.SpatialFactor{
			arch.Choice(c.PixelLanes, workload.DimQ, workload.DimP, workload.DimC, workload.DimN),
			arch.Choice(c.OutputLanes, workload.DimK, workload.DimN),
		}
		ringBank.CapacityBits = int64(c.WordBits)
		levels = []arch.Level{dram, glb, modIn, accum, pdSum, ringBank}
	} else {
		// More-weight-reuse topology: the pixel-lane fan-out moves below
		// the ring bank, so one programmed ring serves every lane. The
		// rings' outputs need an extra distribution stage (extra laser
		// power), and the ring bank now holds a full window of weights.
		modIn.Spatial = []arch.SpatialFactor{
			arch.Choice(c.OutputLanes, workload.DimK, workload.DimN),
		}
		// Shared rings hold one weight for every lane, so the lanes must
		// carry weight-irrelevant dimensions (pixels or batch) — a lane
		// cannot demand its own C-slice from a ring it shares.
		ringBank.Spatial = []arch.SpatialFactor{
			arch.Choice(c.PixelLanes, workload.DimQ, workload.DimP, workload.DimN),
		}
		ringBank.InputOverlapSharing = true
		ringBank.CapacityBits = int64(c.WordBits) * 9 * int64(c.ORLanes)
		levels = []arch.Level{dram, glb, modIn, ringBank, accum, pdSum}
	}

	a := &arch.Arch{
		Name:            fmt.Sprintf("albireo-%s-ir%d-or%d-wr%v", c.Scaling, c.IR(), c.OR(), c.WeightReuse),
		Levels:          levels,
		Lib:             lib,
		ClockGHz:        ParamsFor(c.Scaling).ClockGHz,
		DefaultWordBits: c.WordBits,
		Compute: arch.Compute{
			Name: "OpticalMultiplier", Domain: arch.AO,
			PerMAC: []arch.ActionRef{
				{Component: "CombLaser", Action: components.ActionSupply},
				{Component: "WeightMRR", Action: components.ActionTransit},
			},
		},
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("albireo: built invalid architecture: %w", err)
	}
	return a, nil
}

// detectorSensitivityMW is the received power the link budget designs to:
// the photodiode's sensitivity floor, shared by the budget-mode laser and
// the OutputPD spec so the analog fidelity model sees the same number in
// both laser modes.
const detectorSensitivityMW = 0.05

// buildLaser constructs the comb laser, either from the calibrated per-MAC
// constant or from the physical link budget.
func (c Config) buildLaser(p Params) (components.Component, error) {
	wrFactor := 1.0
	if c.WeightReuse {
		wrFactor = c.WeightReuseLaserFactor
		if wrFactor <= 0 {
			wrFactor = 1.6
		}
	}
	if !c.LaserFromBudget {
		return components.NewLaserPerMAC("CombLaser", p.LaserPerMACPJ*wrFactor, 0)
	}
	// Physical path: fiber coupling, input MZM, the IR-way star coupler,
	// one ring pass, and on-chip routing, into the photodiode's
	// sensitivity floor, at the symbol rate, amortized over the IR
	// multipliers one carrier feeds.
	budget := LinkBudget(c)
	return components.NewLaser(components.LaserSpec{
		Name:                    "CombLaser",
		WallPlugEfficiency:      0.20,
		PathLossDB:              budget.TotalDB(),
		DetectorSensitivityMW:   detectorSensitivityMW,
		SymbolNS:                1 / p.ClockGHz,
		MACsPerWavelengthSymbol: float64(c.IR()) / wrFactor,
	})
}

// LinkBudget returns the laser-to-detector optical loss budget of a
// configuration.
func LinkBudget(c Config) *components.LinkBudget {
	var b components.LinkBudget
	b.Add("fiber coupling", 1.5)
	b.Add("input MZM insertion", 3.0)
	b.Add("star coupler split", components.SplitLossDB(c.IR()))
	b.Add("star coupler excess", 0.5)
	b.Add("ring through", 0.5)
	b.Add("waveguide routing", 1.0)
	if c.WeightReuse {
		b.Add("ring-output distribution", 2.0)
	}
	return &b
}

func errFirst(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
