package albireo

import (
	"photoloop/internal/model"
	"photoloop/internal/workload"
)

// Fig2Bin is the component-oriented grouping of the paper's Fig. 2 energy
// breakdown (accelerator + laser; DRAM excluded).
type Fig2Bin string

// Fig. 2 bins, in the paper's legend order.
const (
	BinMRR   Fig2Bin = "MRR"
	BinMZM   Fig2Bin = "MZM"
	BinLaser Fig2Bin = "Laser"
	BinAOAE  Fig2Bin = "AO/AE"
	BinDEAE  Fig2Bin = "DE/AE"
	BinAEDE  Fig2Bin = "AE/DE"
	BinCache Fig2Bin = "Cache"
	BinDRAM  Fig2Bin = "DRAM" // excluded from Fig. 2 totals, used by Fig. 4
	BinOther Fig2Bin = "Other"
)

// Fig2Bins lists the accelerator bins in legend order.
func Fig2Bins() []Fig2Bin {
	return []Fig2Bin{BinMRR, BinMZM, BinLaser, BinAOAE, BinDEAE, BinAEDE, BinCache}
}

// ClassifyFig2 maps a ledger entry to its Fig. 2 bin.
func ClassifyFig2(e *model.EnergyItem) Fig2Bin {
	switch e.Class {
	case "mrr":
		return BinMRR
	case "mzm":
		return BinMZM
	case "laser":
		return BinLaser
	case "photodiode":
		return BinAOAE
	case "dac":
		return BinDEAE
	case "adc":
		return BinAEDE
	case "sram", "regfile":
		return BinCache
	case "dram":
		return BinDRAM
	}
	return BinOther
}

// RoleBin is the role-oriented grouping of the paper's Figs. 4 and 5.
type RoleBin string

// Fig. 4/5 bins, in the paper's legend order.
const (
	RoleOtherAO    RoleBin = "Other AO"
	RoleWeightConv RoleBin = "Weight DE/AE, AE/AO"
	RoleInputConv  RoleBin = "Input DE/AE, AE/AO"
	RoleOutputConv RoleBin = "Output AO/AE, AE/DE"
	RoleBuffer     RoleBin = "On-Chip Buffer"
	RoleDRAM       RoleBin = "DRAM"
	RoleOther      RoleBin = "Other"
)

// RoleBins lists the role bins in legend order.
func RoleBins() []RoleBin {
	return []RoleBin{RoleOtherAO, RoleWeightConv, RoleInputConv, RoleOutputConv, RoleBuffer, RoleDRAM}
}

// ClassifyRole maps a ledger entry to its Fig. 4/5 bin.
func ClassifyRole(e *model.EnergyItem) RoleBin {
	switch e.Class {
	case "laser":
		return RoleOtherAO
	case "mrr":
		if e.Action == "transit" {
			return RoleOtherAO
		}
		return RoleWeightConv
	case "mzm":
		return RoleInputConv
	case "photodiode", "adc":
		return RoleOutputConv
	case "dac":
		switch e.Tensor {
		case workload.Weights.String():
			return RoleWeightConv
		case workload.Inputs.String():
			return RoleInputConv
		default:
			return RoleOutputConv
		}
	case "sram", "regfile":
		return RoleBuffer
	case "dram":
		return RoleDRAM
	}
	return RoleOther
}

// Fig2Breakdown groups a result's ledger into Fig. 2 bins (pJ).
func Fig2Breakdown(r *model.Result) map[Fig2Bin]float64 {
	out := map[Fig2Bin]float64{}
	for i := range r.Energy {
		out[ClassifyFig2(&r.Energy[i])] += r.Energy[i].TotalPJ
	}
	return out
}

// RoleBreakdown groups a result's ledger into Fig. 4/5 bins (pJ).
func RoleBreakdown(r *model.Result) map[RoleBin]float64 {
	out := map[RoleBin]float64{}
	for i := range r.Energy {
		out[ClassifyRole(&r.Energy[i])] += r.Energy[i].TotalPJ
	}
	return out
}

// AcceleratorPJ sums a result's energy excluding DRAM (the paper's Fig. 2
// scope: accelerator + laser).
func AcceleratorPJ(r *model.Result) float64 {
	var sum float64
	for i := range r.Energy {
		if r.Energy[i].Class != "dram" {
			sum += r.Energy[i].TotalPJ
		}
	}
	return sum
}

// ConverterPJ sums all cross-domain conversion energy (DAC, ADC, MZM, MRR
// programming, photodiode) — the quantity the paper's Fig. 5 reduces by
// 42%.
func ConverterPJ(r *model.Result) float64 {
	var sum float64
	for i := range r.Energy {
		e := &r.Energy[i]
		switch e.Class {
		case "dac", "adc", "mzm", "photodiode":
			sum += e.TotalPJ
		case "mrr":
			if e.Action == "program" {
				sum += e.TotalPJ
			}
		}
	}
	return sum
}
