package fidelity_test

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"testing"

	"photoloop/internal/albireo"
	"photoloop/internal/fidelity"
	"photoloop/internal/presets"
)

// refParams is the hand-derivable Albireo-default parameter set the golden
// file pins; the property tests perturb one knob at a time around it.
func refParams() fidelity.Params {
	return fidelity.Params{
		DACBits:           []int{8, 8},
		ADCBits:           8,
		ReceivedPowerMW:   0.05,
		BandwidthGHz:      5,
		TemperatureK:      300,
		ResponsivityAPerW: 1,
		LoadOhms:          10e3,
		ReferenceBits:     8,
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// TestSNRMonotoneInLaserPower pins the core physics property: more
// received optical power means less shot and thermal noise relative to
// signal, so SNR (and effective bits) must strictly increase with power,
// saturating only at the converter-limited ceiling.
func TestSNRMonotoneInLaserPower(t *testing.T) {
	for _, merged := range []int{1, 3, 9, 27} {
		p := refParams()
		prev := math.Inf(-1)
		for _, mw := range []float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100} {
			p.ReceivedPowerMW = mw
			r := p.Rollup(merged)
			if r.SNRDB <= prev {
				t.Fatalf("M=%d: SNR not strictly increasing in power: %.6f dB at %g mW after %.6f dB", merged, r.SNRDB, mw, prev)
			}
			if ceiling := fidelity.RefSNRDB(p.ADCBits); r.SNRDB >= ceiling {
				t.Fatalf("M=%d at %g mW: SNR %.4f dB at or above the %d-bit converter ceiling %.4f dB", merged, mw, r.SNRDB, p.ADCBits, ceiling)
			}
			prev = r.SNRDB
		}
	}
}

// TestEffectiveBitsMonotoneInADCResolution: a finer readout converter can
// only help, so effective bits strictly increase with ADC resolution until
// the photodetector noise floor dominates.
func TestEffectiveBitsMonotoneInADCResolution(t *testing.T) {
	p := refParams()
	// Generous optical power keeps quantization the dominant noise source,
	// so each extra ADC bit visibly moves the total. M=1 keeps the whole
	// sweep above the zero-bits clamp (at M=9 a 2-bit ADC's inflated full
	// scale drives effective bits to the floor).
	p.ReceivedPowerMW = 10
	prev := math.Inf(-1)
	for bits := 2; bits <= 16; bits++ {
		p.ADCBits = bits
		r := p.Rollup(1)
		if r.EffectiveBits <= prev {
			t.Fatalf("effective bits not strictly increasing in ADC resolution: %.6f at %d bits after %.6f", r.EffectiveBits, bits, prev)
		}
		prev = r.EffectiveBits
	}
}

// TestEffectiveBitsMonotoneInMerging: merging more analog partials into one
// converted sample widens the ADC full scale and accumulates shot noise, so
// effective precision must strictly decrease with the merge factor — the
// energy/precision trade the explore objective navigates.
func TestEffectiveBitsMonotoneInMerging(t *testing.T) {
	p := refParams()
	prev := math.Inf(1)
	for _, merged := range []int{1, 3, 9, 27, 81} {
		r := p.Rollup(merged)
		if r.EffectiveBits >= prev {
			t.Fatalf("effective bits not strictly decreasing in merge factor: %.6f at M=%d after %.6f", r.EffectiveBits, merged, prev)
		}
		prev = r.EffectiveBits
	}
}

// TestAccuracyLossBounds: the degradation proxy is a percentage — never
// negative, never above 100, and zero whenever the chain meets the
// reference precision.
func TestAccuracyLossBounds(t *testing.T) {
	p := refParams()
	for _, mw := range []float64{0.001, 0.05, 1, 100} {
		for _, adc := range []int{2, 4, 8, 12, 16} {
			for _, merged := range []int{1, 9, 81} {
				p.ReceivedPowerMW = mw
				p.ADCBits = adc
				r := p.Rollup(merged)
				if r.AccuracyLossPct < 0 || r.AccuracyLossPct > 100 {
					t.Fatalf("mw=%g adc=%d M=%d: accuracy loss %.4f%% outside [0, 100]", mw, adc, merged, r.AccuracyLossPct)
				}
				if r.EffectiveBits >= float64(p.ReferenceBits) && r.AccuracyLossPct != 0 {
					t.Fatalf("mw=%g adc=%d M=%d: %.4f effective bits >= %d reference bits but loss %.4f%% != 0",
						mw, adc, merged, r.EffectiveBits, p.ReferenceBits, r.AccuracyLossPct)
				}
			}
		}
	}
}

// TestNoiselessLimitExact: with every noise source off the chain reports
// exactly the reference precision and exactly zero degradation — the
// constants are exact (10*log10 forms), not the rounded 6.02/1.76, so these
// comparisons are equalities, not tolerances.
func TestNoiselessLimitExact(t *testing.T) {
	p := refParams()
	p.Noiseless = true
	r := p.Rollup(9)
	if r.EffectiveBits != 8 {
		t.Fatalf("noiseless effective bits = %v, want exactly 8", r.EffectiveBits)
	}
	if r.AccuracyLossPct != 0 {
		t.Fatalf("noiseless accuracy loss = %v, want exactly 0", r.AccuracyLossPct)
	}
	if r.SNRDB != fidelity.RefSNRDB(8) {
		t.Fatalf("noiseless SNR = %v dB, want exactly RefSNRDB(8) = %v", r.SNRDB, fidelity.RefSNRDB(8))
	}
}

// TestDigitalArchPerfect: an architecture with no analog conversion chain
// (the electrical baseline preset) compiles to a perfect digital chain that
// reports exactly the reference precision for any mapping.
func TestDigitalArchPerfect(t *testing.T) {
	p, err := presets.ByName("electrical-baseline")
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := fidelity.Compile(a, &fidelity.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Digital() {
		t.Fatalf("electrical baseline compiled as analog: %+v", c.Params)
	}
	ref := c.Params.ReferenceBits
	if ref <= 0 {
		t.Fatalf("reference bits = %d, want the architecture word size", ref)
	}
	r := c.Evaluate(nil)
	if r.EffectiveBits != float64(ref) || r.AccuracyLossPct != 0 {
		t.Fatalf("digital chain reported %.4f effective bits, %.4f%% loss; want exactly %d bits, 0%%", r.EffectiveBits, r.AccuracyLossPct, ref)
	}
}

// golden mirrors testdata/golden.json: the parameter set Compile must
// extract from the stock Albireo link budget, and hand-computed rollups at
// the canonical merge factor (the 3x3 photodetector window) and at M=1.
type golden struct {
	Params struct {
		DACBits           []int   `json:"dac_bits"`
		ADCBits           int     `json:"adc_bits"`
		ReceivedPowerMW   float64 `json:"received_power_mw"`
		BandwidthGHz      float64 `json:"bandwidth_ghz"`
		TemperatureK      float64 `json:"temperature_k"`
		ResponsivityAPerW float64 `json:"responsivity_a_per_w"`
		LoadOhms          float64 `json:"load_ohms"`
		ReferenceBits     int     `json:"reference_bits"`
	} `json:"params"`
	Reports []fidelity.Report `json:"reports"`
}

// TestGoldenAlbireoLinkBudget pins the whole pipeline against numbers
// computed by hand from the Albireo link budget (see the derivation notes
// inside the testdata file): Compile must recover the committed parameter
// set from the component tables alone, and Rollup must reproduce each NSR
// term to float precision and the log-derived metrics to 0.1%.
func TestGoldenAlbireoLinkBudget(t *testing.T) {
	raw, err := os.ReadFile("testdata/golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var g golden
	if err := json.Unmarshal(raw, &g); err != nil {
		t.Fatal(err)
	}

	cfg := albireo.Default(albireo.Conservative)
	a, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := fidelity.Compile(a, &fidelity.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Params
	if len(p.DACBits) != len(g.Params.DACBits) {
		t.Fatalf("compiled %d DAC stages, want %d", len(p.DACBits), len(g.Params.DACBits))
	}
	for i, b := range g.Params.DACBits {
		if p.DACBits[i] != b {
			t.Fatalf("DAC stage %d: %d bits, want %d", i, p.DACBits[i], b)
		}
	}
	if p.ADCBits != g.Params.ADCBits {
		t.Fatalf("ADC bits = %d, want %d", p.ADCBits, g.Params.ADCBits)
	}
	if p.ReceivedPowerMW != g.Params.ReceivedPowerMW {
		t.Fatalf("received power = %v mW, want %v (the link-budget detector sensitivity)", p.ReceivedPowerMW, g.Params.ReceivedPowerMW)
	}
	if p.BandwidthGHz != g.Params.BandwidthGHz {
		t.Fatalf("bandwidth = %v GHz, want %v (the architecture clock)", p.BandwidthGHz, g.Params.BandwidthGHz)
	}
	if p.TemperatureK != g.Params.TemperatureK || p.ResponsivityAPerW != g.Params.ResponsivityAPerW || p.LoadOhms != g.Params.LoadOhms {
		t.Fatalf("physical defaults %+v, want T=%v R=%v RL=%v", p, g.Params.TemperatureK, g.Params.ResponsivityAPerW, g.Params.LoadOhms)
	}
	if p.ReferenceBits != g.Params.ReferenceBits {
		t.Fatalf("reference bits = %d, want %d (the architecture word size)", p.ReferenceBits, g.Params.ReferenceBits)
	}

	// The canonical Albireo mapping merges the full 3x3 photodetector
	// window: the chain must read M=9 straight off the machine shape.
	if m := c.MergedPartials(nil); m != 9 {
		t.Fatalf("canonical merged partials = %d, want 9 (the 3x3 PD window)", m)
	}

	for _, want := range g.Reports {
		got := p.Rollup(want.MergedPartials)
		if got.MergedPartials != want.MergedPartials {
			t.Fatalf("M=%d: echoed merge factor %d", want.MergedPartials, got.MergedPartials)
		}
		for _, f := range []struct {
			name      string
			got, want float64
			tol       float64
		}{
			// NSR terms are exact closed forms — pinned to float precision.
			{"nsr_dac", got.NSRDAC, want.NSRDAC, 1e-9},
			{"nsr_shot", got.NSRShot, want.NSRShot, 1e-9},
			{"nsr_thermal", got.NSRThermal, want.NSRThermal, 1e-9},
			{"nsr_adc", got.NSRADC, want.NSRADC, 1e-9},
			{"nsr_total", got.NSRTotal, want.NSRTotal, 1e-9},
			// Log-derived metrics were hand-computed at 6 digits.
			{"snr_db", got.SNRDB, want.SNRDB, 1e-3},
			{"effective_bits", got.EffectiveBits, want.EffectiveBits, 1e-3},
			{"accuracy_loss_pct", got.AccuracyLossPct, want.AccuracyLossPct, 1e-3},
		} {
			if relDiff(f.got, f.want) > f.tol {
				t.Errorf("M=%d: %s = %.12g, want %.12g (rel diff %.2e > %.0e)",
					want.MergedPartials, f.name, f.got, f.want, relDiff(f.got, f.want), f.tol)
			}
		}
	}
}

// TestMonteCarloCrossCheck validates the closed-form NSR rollup against a
// sampled noise simulation, refsim-style: draw per-source noise samples
// with the modeled variances (uniform quantization error per converter
// stage, Gaussian shot+thermal current noise), and require the empirical
// noise power to match NSRTotal. Independence of the sources is exactly
// what "NSRs add" assumes, so agreement here checks the rollup identity,
// not just the arithmetic.
func TestMonteCarloCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	uniform := func(variance float64) float64 {
		// A uniform on [-w/2, w/2] has variance w^2/12.
		w := math.Sqrt(12 * variance)
		return (rng.Float64() - 0.5) * w
	}
	p := refParams()
	for _, merged := range []int{1, 9} {
		want := p.Rollup(merged)
		gaussStd := math.Sqrt(want.NSRShot + want.NSRThermal)
		perDAC := want.NSRDAC / float64(len(p.DACBits))
		const n = 200_000
		var sumSq float64
		for i := 0; i < n; i++ {
			var noise float64
			for range p.DACBits {
				noise += uniform(perDAC)
			}
			noise += rng.NormFloat64() * gaussStd
			noise += uniform(want.NSRADC)
			sumSq += noise * noise
		}
		got := sumSq / n
		if relDiff(got, want.NSRTotal) > 0.02 {
			t.Fatalf("M=%d: sampled noise power %.6g vs closed-form NSR %.6g (rel diff %.3f > 2%%)",
				merged, got, want.NSRTotal, relDiff(got, want.NSRTotal))
		}
	}
}
