// Package fidelity is the analog error model: it derives a per-mapping
// signal-to-noise ratio for the analog signal chain of an architecture
// (shot and thermal noise at the photodetector, quantization noise of the
// DAC and ADC conversion stages) and rolls it up into an effective-bits /
// estimated-accuracy-degradation metric.
//
// The model follows the standard photonic-NN formulations (the photonic
// neural-network fundamentals survey, arXiv:2312.00037) and the noise
// taxonomy AnalogVNN applies to optoelectronic networks (arXiv:2210.10048):
// every noise source is expressed as a noise-to-signal power ratio (NSR)
// relative to a full-scale signal, independent sources add, and the total
// converts to an effective number of bits through the standard quantizer
// identity SNR = 1.5 * 4^bits (the "6.02 b + 1.76 dB" rule with exact
// constants).
//
// The rollup is mapping dependent through one integer: the number of
// analog partial products merged into a single detected/converted sample
// (Albireo's OR lever times the 3x3 photodetector window). More merging
// amortizes converter energy — the paper's Fig. 5 lever — but widens the
// ADC's full scale, trading energy against effective precision. Compile
// extracts everything else (converter resolutions, received optical power,
// bandwidth) from the architecture itself, so the same component tables
// that ground the energy model ground the noise model.
//
// Everything here is a closed-form post-pass over a finished mapping: the
// compiled evaluator hot path never sees it, and results with the model
// disabled are bit-identical to results from builds without it.
package fidelity

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"photoloop/internal/arch"
	"photoloop/internal/components"
	"photoloop/internal/mapping"
	"photoloop/internal/workload"
)

// Physical constants (SI units).
const (
	// ElectronCharge is the elementary charge in coulombs.
	ElectronCharge = 1.602176634e-19
	// Boltzmann is the Boltzmann constant in joules per kelvin.
	Boltzmann = 1.380649e-23
)

// Default physical parameters, used for every Spec field left zero.
const (
	// DefaultTemperatureK is the receiver temperature for thermal noise.
	DefaultTemperatureK = 300.0
	// DefaultResponsivityAPerW is the photodiode responsivity (A/W); near
	// 1 A/W for germanium detectors in the C band.
	DefaultResponsivityAPerW = 1.0
	// DefaultLoadOhms is the transimpedance-amplifier feedback resistance
	// the thermal (Johnson) noise current is referred to.
	DefaultLoadOhms = 10e3
	// DefaultReceivedPowerMW is the received optical power per wavelength
	// when neither the spec, the laser link budget, nor the photodiode
	// sensitivity provides one. It equals the detector sensitivity floor
	// the Albireo link budget designs to.
	DefaultReceivedPowerMW = 0.05
)

// Spec configures the analog error model. The zero value asks for pure
// architecture-derived defaults: converter resolutions and received power
// from the component tables, bandwidth from the clock, reference precision
// from the architecture word size. All fields are optional overrides.
type Spec struct {
	// TemperatureK overrides the receiver temperature in kelvin.
	TemperatureK float64 `json:"temperature_k,omitempty"`
	// ResponsivityAPerW overrides the photodiode responsivity in A/W.
	ResponsivityAPerW float64 `json:"responsivity_a_per_w,omitempty"`
	// LoadOhms overrides the TIA feedback resistance in ohms.
	LoadOhms float64 `json:"load_ohms,omitempty"`
	// ReceivedPowerMW overrides the received optical power per wavelength
	// in milliwatts (the laser-power lever of the SNR property tests).
	ReceivedPowerMW float64 `json:"received_power_mw,omitempty"`
	// BandwidthGHz overrides the receiver noise bandwidth in GHz (default:
	// the architecture clock — one sample per symbol).
	BandwidthGHz float64 `json:"bandwidth_ghz,omitempty"`
	// ReferenceBits overrides the precision the degradation metric is
	// measured against (default: the architecture word size).
	ReferenceBits int `json:"reference_bits,omitempty"`
	// Noiseless turns every noise source off: the chain reports exactly
	// the reference precision and zero degradation. The noiseless limit of
	// the property-test suite, and a cheap way to A/B the metric itself.
	Noiseless bool `json:"noiseless,omitempty"`
}

// Validate rejects physically meaningless parameters (negative, NaN or
// infinite values; out-of-range reference precision).
func (s *Spec) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"temperature_k", s.TemperatureK},
		{"responsivity_a_per_w", s.ResponsivityAPerW},
		{"load_ohms", s.LoadOhms},
		{"received_power_mw", s.ReceivedPowerMW},
		{"bandwidth_ghz", s.BandwidthGHz},
	} {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("fidelity: %s = %v, want a finite non-negative value", f.name, f.v)
		}
	}
	if s.ReferenceBits < 0 || s.ReferenceBits > 64 {
		return fmt.Errorf("fidelity: reference_bits = %d, want 0..64", s.ReferenceBits)
	}
	return nil
}

// ParseSpec decodes a fidelity spec document strictly (unknown fields are
// errors) and validates it.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("fidelity: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Encode returns the spec's canonical JSON form: parsing the result and
// encoding again reproduces it byte-identically (the fuzz-pinned
// idempotence the job engine's content addressing relies on).
func (s *Spec) Encode() ([]byte, error) {
	buf, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("fidelity: encoding spec: %w", err)
	}
	return buf, nil
}

// Params is the fully resolved physical parameter set of one architecture's
// analog signal chain — what Compile extracts, and the direct input of the
// property-test and Monte-Carlo suites.
type Params struct {
	// DACBits holds the resolution of every digital-to-analog conversion
	// stage on the signal path (Albireo: the input DAC and the weight DAC).
	DACBits []int
	// ADCBits is the readout converter resolution.
	ADCBits int
	// ReceivedPowerMW is the optical power arriving at the photodetector
	// per wavelength, in milliwatts.
	ReceivedPowerMW float64
	// BandwidthGHz is the receiver noise bandwidth in GHz.
	BandwidthGHz float64
	// TemperatureK is the receiver temperature in kelvin.
	TemperatureK float64
	// ResponsivityAPerW is the photodiode responsivity in A/W.
	ResponsivityAPerW float64
	// LoadOhms is the TIA feedback resistance in ohms.
	LoadOhms float64
	// ReferenceBits is the precision degradation is measured against.
	ReferenceBits int
	// Noiseless disables every noise source.
	Noiseless bool
}

// Report is the rolled-up fidelity of one configuration at one merge
// factor. All NSR fields are noise-to-signal power ratios against the
// full-scale signal of one merged sample.
type Report struct {
	// MergedPartials is the number of analog partial products summed into
	// one converted sample (the mapping-dependent input of the rollup).
	MergedPartials int `json:"merged_partials"`
	// NSRDAC is the summed quantization noise of the DAC stages.
	NSRDAC float64 `json:"nsr_dac"`
	// NSRShot is the photodetector shot-noise contribution.
	NSRShot float64 `json:"nsr_shot"`
	// NSRThermal is the receiver thermal (Johnson) noise contribution.
	NSRThermal float64 `json:"nsr_thermal"`
	// NSRADC is the readout quantization noise, inflated by the merged
	// full scale.
	NSRADC float64 `json:"nsr_adc"`
	// NSRTotal is the sum of all contributions (independent sources add).
	NSRTotal float64 `json:"nsr_total"`
	// SNRDB is 10*log10(1/NSRTotal).
	SNRDB float64 `json:"snr_db"`
	// EffectiveBits is the equivalent ideal-quantizer resolution:
	// (SNRDB - 1.76) / 6.02 with exact constants, clamped at zero.
	EffectiveBits float64 `json:"effective_bits"`
	// AccuracyLossPct estimates the relative accuracy degradation versus a
	// ReferenceBits-precision execution as 100*(1 - 2^-(lost bits)) — a
	// documented heuristic proxy (each lost bit halves the distinguishable
	// signal levels), not a trained-network measurement.
	AccuracyLossPct float64 `json:"accuracy_loss_pct"`
}

// Exact constants of the quantizer identity SNR_dB = 6.02 b + 1.76: an
// ideal b-bit quantizer of a full-scale sine has SNR = 1.5 * 4^b.
var (
	enobOffsetDB = 10 * math.Log10(1.5) // 1.7609...
	enobScaleDB  = 10 * math.Log10(4)   // 6.0206...
)

// RefSNRDB returns the SNR of an ideal quantizer at the given resolution —
// the ceiling a noiseless chain reports.
func RefSNRDB(bits int) float64 {
	return enobOffsetDB + enobScaleDB*float64(bits)
}

// quantNSR is the quantization noise-to-signal ratio of an ideal b-bit
// converter at full scale: 1 / (1.5 * 4^b).
func quantNSR(bits int) float64 {
	return 1 / (1.5 * math.Exp2(2*float64(bits)))
}

// perfect is the noiseless (or all-digital) report: exactly the reference
// precision, zero degradation.
func perfect(refBits, merged int) Report {
	return Report{
		MergedPartials: merged,
		NSRTotal:       quantNSR(refBits),
		SNRDB:          RefSNRDB(refBits),
		EffectiveBits:  float64(refBits),
	}
}

// Rollup computes the closed-form fidelity report for this parameter set
// with the given number of merged analog partials (merged < 1 is treated
// as 1).
//
// Per-source NSR terms, each against one merged sample's full scale:
//
//   - DAC stage: 1 / (1.5 * 4^bits) per stage (ideal quantizer).
//   - Shot noise: var(I) = 2 q I M B with photocurrent I = R * P; as an
//     NSR, 2 q M B / (R P).
//   - Thermal noise: var(I) = 4 kB T B / R_L referred to I².
//   - ADC: M² / (1.5 * 4^bits) — the converter's full scale spans the sum
//     of M partials, so per-partial resolution shrinks by M.
//
// Independent sources add; SNR, effective bits and the degradation proxy
// follow from the total.
func (p Params) Rollup(merged int) Report {
	if merged < 1 {
		merged = 1
	}
	if p.Noiseless {
		return perfect(p.ReferenceBits, merged)
	}
	r := Report{MergedPartials: merged}
	for _, b := range p.DACBits {
		r.NSRDAC += quantNSR(b)
	}
	m := float64(merged)
	// Photocurrent of one full-scale partial product at the received
	// per-wavelength power — the signal reference every NSR term is
	// normalized to. The detected merged sample carries m of them, so its
	// shot variance grows with m while the reference stays per-partial.
	current := p.ResponsivityAPerW * p.ReceivedPowerMW * 1e-3
	bandwidth := p.BandwidthGHz * 1e9
	if current > 0 && bandwidth > 0 {
		shotVar := 2 * ElectronCharge * (current * m) * bandwidth
		r.NSRShot = shotVar / (current * current)
		if p.LoadOhms > 0 {
			thermVar := 4 * Boltzmann * p.TemperatureK * bandwidth / p.LoadOhms
			r.NSRThermal = thermVar / (current * current)
		}
	}
	if p.ADCBits > 0 {
		r.NSRADC = m * m * quantNSR(p.ADCBits)
	}
	r.NSRTotal = r.NSRDAC + r.NSRShot + r.NSRThermal + r.NSRADC
	if r.NSRTotal <= 0 {
		return perfect(p.ReferenceBits, merged)
	}
	r.SNRDB = -10 * math.Log10(r.NSRTotal)
	r.EffectiveBits = math.Max(0, (r.SNRDB-enobOffsetDB)/enobScaleDB)
	if lost := float64(p.ReferenceBits) - r.EffectiveBits; lost > 0 {
		r.AccuracyLossPct = 100 * (1 - math.Exp2(-lost))
	}
	return r
}

// Chain is a compiled fidelity model for one architecture: the resolved
// physical parameters plus the analog level structure that makes the
// rollup mapping dependent.
type Chain struct {
	// Params is the resolved physical parameter set.
	Params Params

	a *arch.Arch
	// analogLevels are the AE/AO level indices at or below the readout
	// converter's level: spatial reduction factors assigned there merge in
	// the analog domain before digitization.
	analogLevels []int
	// digital marks an architecture without an analog readout chain — it
	// reports the reference precision unconditionally.
	digital bool
}

// Compile resolves a spec against an architecture: converter resolutions
// from the component library (the typed components.ADC / components.DAC
// wrappers), received power from the laser link budget or the photodiode
// sensitivity floor, bandwidth from the clock. A nil spec means defaults.
// Architectures without an analog conversion chain (no ADC on any drain
// path, or no analog-domain levels) compile to a perfect digital chain.
func Compile(a *arch.Arch, s *Spec) (*Chain, error) {
	if s == nil {
		s = &Spec{}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := &Chain{a: a}
	p := &c.Params
	p.Noiseless = s.Noiseless

	adcLevel := -1
	var laserMW, pdMW float64
	seenDAC := map[string]bool{}
	for i := range a.Levels {
		l := &a.Levels[i]
		for _, via := range []map[workload.Tensor][]arch.ActionRef{l.FillVia, l.UpdateVia, l.DrainVia} {
			for _, refs := range via {
				for _, ref := range refs {
					comp, err := a.Lib.Get(ref.Component)
					if err != nil {
						return nil, fmt.Errorf("fidelity: %s level %s: %w", a.Name, l.Name, err)
					}
					switch cc := comp.(type) {
					case *components.ADC:
						p.ADCBits = cc.Bits()
						adcLevel = i
					case *components.DAC:
						if !seenDAC[comp.Name()] {
							seenDAC[comp.Name()] = true
							p.DACBits = append(p.DACBits, cc.Bits())
						}
					case *components.Photodiode:
						if mw := cc.SensitivityMW(); mw > 0 {
							pdMW = mw
						}
					}
				}
			}
		}
	}
	for _, ref := range a.Compute.PerMAC {
		comp, err := a.Lib.Get(ref.Component)
		if err != nil {
			return nil, fmt.Errorf("fidelity: %s compute: %w", a.Name, err)
		}
		if laser, ok := comp.(*components.Laser); ok {
			if mw := laser.ReceivedPowerMW(); mw > 0 {
				laserMW = mw
			}
		}
	}

	if adcLevel >= 0 {
		for i := adcLevel; i < len(a.Levels); i++ {
			if d := a.Levels[i].Domain; d == arch.AE || d == arch.AO {
				c.analogLevels = append(c.analogLevels, i)
			}
		}
	}
	c.digital = adcLevel < 0 || len(c.analogLevels) == 0

	p.TemperatureK = defaultFloat(s.TemperatureK, DefaultTemperatureK)
	p.ResponsivityAPerW = defaultFloat(s.ResponsivityAPerW, DefaultResponsivityAPerW)
	p.LoadOhms = defaultFloat(s.LoadOhms, DefaultLoadOhms)
	p.BandwidthGHz = defaultFloat(s.BandwidthGHz, a.ClockGHz)
	p.ReferenceBits = s.ReferenceBits
	if p.ReferenceBits == 0 {
		p.ReferenceBits = a.DefaultWordBits
	}
	switch {
	case s.ReceivedPowerMW > 0:
		p.ReceivedPowerMW = s.ReceivedPowerMW
	case laserMW > 0:
		p.ReceivedPowerMW = laserMW
	case pdMW > 0:
		p.ReceivedPowerMW = pdMW
	default:
		p.ReceivedPowerMW = DefaultReceivedPowerMW
	}
	return c, nil
}

// defaultFloat substitutes def for an unset (zero) override.
func defaultFloat(v, def float64) float64 {
	if v > 0 {
		return v
	}
	return def
}

// Digital reports whether the architecture has no analog conversion chain
// (the compiled model is the perfect reference).
func (c *Chain) Digital() bool { return c.digital }

// MergedPartials counts the analog partial products one converted sample
// sums under a mapping: the product of spatial factors assigned to
// reduction dimensions (C, R, S) at the analog levels at or below the
// readout converter. A nil mapping yields the canonical machine shape.
func (c *Chain) MergedPartials(m *mapping.Mapping) int {
	merged := 1
	for _, i := range c.analogLevels {
		l := c.a.Level(i)
		var sp workload.Point
		if m != nil && i < len(m.Levels) {
			sp = m.Levels[i].SpatialPoint(l)
		} else {
			sp = l.CanonicalSpatial()
		}
		for _, d := range workload.ReductionDims() {
			if sp[d] > 1 {
				merged *= sp[d]
			}
		}
	}
	return merged
}

// Evaluate rolls the chain up for one mapping.
func (c *Chain) Evaluate(m *mapping.Mapping) Report {
	if c.digital {
		return perfect(c.Params.ReferenceBits, 1)
	}
	return c.Params.Rollup(c.MergedPartials(m))
}
