package md

import (
	"bytes"
	"strings"
	"testing"
)

func TestEscape(t *testing.T) {
	for in, want := range map[string]string{
		"plain":        "plain",
		"a|b":          `a\|b`,
		"line\nbreak":  "line break",
		"crlf\r\nhere": "crlf here",
	} {
		if got := Escape(in); got != want {
			t.Errorf("Escape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, []string{"name", "count"}, "lr", [][]string{
		{"pipe|d description", "3"},
		{"plain", "12"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"| name | count |",
		"|---|---:|",
		`| pipe\|d description | 3 |`,
		"| plain | 12 |",
		"",
	}, "\n")
	if buf.String() != want {
		t.Errorf("table:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestTableErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Table(&buf, []string{"a"}, "lr", nil); err == nil {
		t.Error("alignment arity mismatch accepted")
	}
	if err := Table(&buf, []string{"a"}, "x", nil); err == nil {
		t.Error("bad alignment byte accepted")
	}
	if err := Table(&buf, []string{"a"}, "l", [][]string{{"1", "2"}}); err == nil {
		t.Error("row arity mismatch accepted")
	}
}
