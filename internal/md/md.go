// Package md holds the one markdown-table renderer every markdown-emitting
// writer shares (the study writer, the explore frontier writer, the
// generated README tables). Centralizing it exists for one correctness
// reason: table cells must escape the characters that break GitHub-flavored
// markdown tables — a `|` in a workload or preset description would
// otherwise silently split the row.
package md

import (
	"fmt"
	"io"
	"strings"
)

// escaper rewrites the characters that break a GFM table cell: pipes are
// escaped, newlines (which would end the row) collapse to spaces.
var escaper = strings.NewReplacer("|", `\|`, "\r\n", " ", "\n", " ", "\r", " ")

// Escape returns s safe for use inside a markdown table cell.
func Escape(s string) string { return escaper.Replace(s) }

// Table writes a GitHub-flavored markdown table: a header row, the
// alignment row, then one row per entry. align holds one byte per column,
// 'l' for left and 'r' for right (numeric) alignment. Every cell —
// header and body — is escaped with Escape, so callers can pass raw
// descriptions without breaking the table.
func Table(w io.Writer, headers []string, align string, rows [][]string) error {
	if len(align) != len(headers) {
		return fmt.Errorf("md: %d alignment bytes for %d columns", len(align), len(headers))
	}
	var b strings.Builder
	writeRow := func(cells []string) error {
		if len(cells) != len(headers) {
			return fmt.Errorf("md: row has %d cells, want %d", len(cells), len(headers))
		}
		b.Reset()
		for _, c := range cells {
			b.WriteString("| ")
			b.WriteString(Escape(c))
			b.WriteString(" ")
		}
		b.WriteString("|\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(headers); err != nil {
		return err
	}
	b.Reset()
	for i := range headers {
		switch align[i] {
		case 'r':
			b.WriteString("|---:")
		case 'l':
			b.WriteString("|---")
		default:
			return fmt.Errorf("md: alignment byte %q for column %d (want 'l' or 'r')", align[i], i)
		}
	}
	b.WriteString("|\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
