package workload

import (
	"errors"
	"fmt"
)

// LayerType classifies a layer for reporting and mapping heuristics. All
// types share the same 7-dimensional iteration space.
type LayerType uint8

// Supported layer types. Depthwise/grouped convolutions are not directly
// representable in the dense 7-dimensional projection (each output channel
// would read a disjoint input-channel slice); fold the channel-parallel
// groups into the batch dimension with NewDepthwise (exact MACs and
// activation footprints) or decompose them into per-group Conv layers
// (exact everything, at one layer per group).
const (
	Conv LayerType = iota // spatial convolution
	FC                    // fully connected / matmul (P=Q=R=S=1)
)

var layerTypeNames = map[LayerType]string{Conv: "Conv", FC: "FC"}

// String returns the layer type's name.
func (t LayerType) String() string {
	if n, ok := layerTypeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("LayerType(%d)", uint8(t))
}

// Layer is one DNN layer expressed as a 7-dimensional nested-loop problem.
// The zero value is not valid; use NewConv/NewFC or fill every field and
// call Validate.
type Layer struct {
	Name string    `json:"name"`
	Type LayerType `json:"type"`

	// Problem bounds.
	N int `json:"n"` // batch
	K int `json:"k"` // output channels
	C int `json:"c"` // input channels
	P int `json:"p"` // output rows
	Q int `json:"q"` // output cols
	R int `json:"r"` // filter rows
	S int `json:"s"` // filter cols

	// Geometry.
	StrideH   int `json:"stride_h"`
	StrideW   int `json:"stride_w"`
	DilationH int `json:"dilation_h"`
	DilationW int `json:"dilation_w"`
	PadH      int `json:"pad_h"` // top+bottom combined is 2*PadH
	PadW      int `json:"pad_w"`

	// Operand precisions in bits. Zero means the evaluator's default.
	WeightBits int `json:"weight_bits,omitempty"`
	InputBits  int `json:"input_bits,omitempty"`
	OutputBits int `json:"output_bits,omitempty"`

	// NPerBatch is how many units of N one batch item contributes; 0
	// means 1 (the plain CNN convention where N is the image count).
	// Layers that fold another data-parallel axis into N — sequence
	// positions in transformer matmuls (N = batch x sequence), channel
	// groups in depthwise convolutions (N = batch x channels) — set it so
	// WithBatch rescales N correctly instead of overwriting the folded
	// axis. It annotates batching only and does not affect evaluation
	// (and therefore is not part of ShapeFingerprint).
	NPerBatch int `json:"n_per_batch,omitempty"`
}

// NewConv builds a square-filter convolution layer. pad is per-side padding.
func NewConv(name string, n, k, c, p, q, r, s, stride, pad int) Layer {
	return Layer{
		Name: name, Type: Conv,
		N: n, K: k, C: c, P: p, Q: q, R: r, S: s,
		StrideH: stride, StrideW: stride,
		DilationH: 1, DilationW: 1,
		PadH: pad, PadW: pad,
	}
}

// NewFC builds a fully-connected layer treated as a 1x1 convolution over a
// 1x1 feature map: Outputs[N][K] = Weights[K][C] x Inputs[N][C].
func NewFC(name string, n, k, c int) Layer {
	l := NewConv(name, n, k, c, 1, 1, 1, 1, 1, 0)
	l.Type = FC
	return l
}

// NewMatmul builds a general matrix multiplication
// Out[rows][cols] = A[rows][inner] x B[inner][cols] as an FC layer with
// N=rows, K=cols, C=inner. The B operand occupies the Weights slot whether
// it holds trained parameters (a projection) or activations (the QK^T and
// attention-x-V matmuls of a transformer block); the analytical model
// charges its movement identically either way. Batched matmuls fold the
// batch axis into rows (see Layer.NPerBatch).
func NewMatmul(name string, rows, cols, inner int) Layer {
	return NewFC(name, rows, cols, inner)
}

// NewDepthwise builds a depthwise convolution over ch channels in the
// dense 7-dimensional projection by folding the channel-parallel groups
// into the batch dimension: N = n*ch, K = C = 1, NPerBatch = ch. MAC
// count, input footprint and output footprint are exact under this
// folding; the ch per-channel filters collapse into one shared RxS filter,
// so the weight footprint is understated by a factor of ch and weight
// reuse across channels is optimistic — a small error at mobile scales,
// where depthwise filters are under 2% of the parameters. Callers needing
// exact weight traffic should decompose into per-group Conv layers
// instead.
func NewDepthwise(name string, n, ch, p, q, r, s, stride, pad int) Layer {
	l := NewConv(name, n*ch, 1, 1, p, q, r, s, stride, pad)
	l.NPerBatch = ch
	return l
}

// Validate checks that the layer describes a consistent problem.
func (l *Layer) Validate() error {
	if l.Name == "" {
		return errors.New("workload: layer has no name")
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"N", l.N}, {"K", l.K}, {"C", l.C}, {"P", l.P},
		{"Q", l.Q}, {"R", l.R}, {"S", l.S},
		{"StrideH", l.StrideH}, {"StrideW", l.StrideW},
		{"DilationH", l.DilationH}, {"DilationW", l.DilationW},
	} {
		if f.v < 1 {
			return fmt.Errorf("workload: layer %s: %s = %d, want >= 1", l.Name, f.name, f.v)
		}
	}
	if l.PadH < 0 || l.PadW < 0 {
		return fmt.Errorf("workload: layer %s: negative padding", l.Name)
	}
	if l.NPerBatch < 0 {
		return fmt.Errorf("workload: layer %s: NPerBatch = %d, want >= 0", l.Name, l.NPerBatch)
	}
	if l.Type == FC && (l.P != 1 || l.Q != 1 || l.R != 1 || l.S != 1) {
		return fmt.Errorf("workload: layer %s: FC layers require P=Q=R=S=1", l.Name)
	}
	return nil
}

// Bounds returns the problem bounds as a Point.
func (l *Layer) Bounds() Point {
	var p Point
	p[DimN] = l.N
	p[DimK] = l.K
	p[DimC] = l.C
	p[DimP] = l.P
	p[DimQ] = l.Q
	p[DimR] = l.R
	p[DimS] = l.S
	return p
}

// Bound returns the bound of a single dimension.
func (l *Layer) Bound(d Dim) int { return l.Bounds()[d] }

// MACs returns the number of multiply-accumulate operations in the layer.
func (l *Layer) MACs() int64 { return l.Bounds().Product() }

// InputH returns the height of the input feature-map region touched by the
// layer (excluding padding contributions beyond the touched window):
// (P-1)*strideH + (R-1)*dilationH + 1.
func (l *Layer) InputH() int {
	return (l.P-1)*l.StrideH + (l.R-1)*l.DilationH + 1
}

// InputW returns the width of the touched input feature-map region.
func (l *Layer) InputW() int {
	return (l.Q-1)*l.StrideW + (l.S-1)*l.DilationW + 1
}

// InputRange returns the extent of the input feature map touched by tile
// extents pExt (over P or Q) and rExt (over R or S) in one spatial axis:
// (pExt-1)*stride + (rExt-1)*dilation + 1. It is the halo formula used for
// input tile sizing.
func InputRange(pExt, rExt, stride, dilation int) int {
	if pExt < 1 || rExt < 1 {
		return 0
	}
	return (pExt-1)*stride + (rExt-1)*dilation + 1
}

// TensorElems returns the number of elements in tensor t.
func (l *Layer) TensorElems(t Tensor) int64 {
	switch t {
	case Weights:
		return int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S)
	case Inputs:
		return int64(l.N) * int64(l.C) * int64(l.InputH()) * int64(l.InputW())
	case Outputs:
		return int64(l.N) * int64(l.K) * int64(l.P) * int64(l.Q)
	}
	panic("workload: unknown tensor")
}

// TensorBits returns the tensor's precision in bits, falling back to def
// when the layer does not specify one.
func (l *Layer) TensorBits(t Tensor, def int) int {
	var b int
	switch t {
	case Weights:
		b = l.WeightBits
	case Inputs:
		b = l.InputBits
	case Outputs:
		b = l.OutputBits
	}
	if b <= 0 {
		return def
	}
	return b
}

// TileElems returns the number of elements of tensor t covered by a tile
// whose per-dimension extents are ext. Input tiles use the sliding-window
// halo formula.
func (l *Layer) TileElems(t Tensor, ext Point) int64 {
	switch t {
	case Weights:
		return int64(ext[DimK]) * int64(ext[DimC]) * int64(ext[DimR]) * int64(ext[DimS])
	case Inputs:
		h := InputRange(ext[DimP], ext[DimR], l.StrideH, l.DilationH)
		w := InputRange(ext[DimQ], ext[DimS], l.StrideW, l.DilationW)
		return int64(ext[DimN]) * int64(ext[DimC]) * int64(h) * int64(w)
	case Outputs:
		return int64(ext[DimN]) * int64(ext[DimK]) * int64(ext[DimP]) * int64(ext[DimQ])
	}
	panic("workload: unknown tensor")
}

// IsStrided reports whether the layer uses a stride greater than one in
// either spatial axis.
func (l *Layer) IsStrided() bool { return l.StrideH > 1 || l.StrideW > 1 }

// IsPointwise reports whether the filter is 1x1.
func (l *Layer) IsPointwise() bool { return l.R == 1 && l.S == 1 }

// WithBatch returns a copy of the layer at batch size n: N becomes
// n x NPerBatch, so layers that fold sequence positions or channel groups
// into N (transformer matmuls, depthwise convolutions) rescale instead of
// losing the folded axis.
func (l Layer) WithBatch(n int) Layer {
	l.N = n * max(1, l.NPerBatch)
	return l
}

// String formats the layer compactly.
func (l *Layer) String() string {
	return fmt.Sprintf("%s[%s %s stride %dx%d pad %dx%d]",
		l.Name, l.Type, l.Bounds(), l.StrideH, l.StrideW, l.PadH, l.PadW)
}

// ShapeFingerprint returns a 64-bit FNV-1a hash of everything that affects
// the layer's evaluation — bounds, geometry, and operand precisions — but
// not its name. Two layers with equal shape fingerprints are
// interchangeable to the analytical model and the mapper, which is what
// lets the sweep's result cache reuse one search across a network's
// repeated layer shapes (e.g. ResNet's identical basic blocks).
func (l *Layer) ShapeFingerprint() uint64 {
	h := NewFnv64a()
	h.Mix(uint64(l.Type))
	for _, v := range []int{l.N, l.K, l.C, l.P, l.Q, l.R, l.S,
		l.StrideH, l.StrideW, l.DilationH, l.DilationW, l.PadH, l.PadW,
		l.WeightBits, l.InputBits, l.OutputBits} {
		h.Mix(uint64(v))
	}
	return h.Sum()
}
