// Package workload describes deep-neural-network workloads as collections
// of seven-dimensional convolution problems, following the Timeloop /
// CiMLoop problem abstraction that the paper builds on.
//
// A convolutional layer is described by the dimensions
//
//	N — batch size
//	K — output channels
//	C — input channels
//	P — output feature-map rows
//	Q — output feature-map columns
//	R — filter rows
//	S — filter columns
//
// together with strides, dilations and padding. A fully-connected layer is
// the degenerate case P=Q=R=S=1. The three operand tensors are projections
// of the iteration space:
//
//	Weights[K][C][R][S]
//	Inputs[N][C][H][W]   with H,W derived from P,R (resp. Q,S) via stride
//	Outputs[N][K][P][Q]
package workload

import "fmt"

// Dim identifies one of the seven problem dimensions.
type Dim uint8

// The seven problem dimensions, in canonical order.
const (
	DimN Dim = iota
	DimK
	DimC
	DimP
	DimQ
	DimR
	DimS
	// NumDims is the number of problem dimensions.
	NumDims
)

var dimNames = [NumDims]string{"N", "K", "C", "P", "Q", "R", "S"}

// String returns the canonical single-letter name of the dimension.
func (d Dim) String() string {
	if d < NumDims {
		return dimNames[d]
	}
	return fmt.Sprintf("Dim(%d)", uint8(d))
}

// AllDims lists every dimension in canonical order. The slice is freshly
// allocated — callers may modify it.
func AllDims() []Dim {
	return []Dim{DimN, DimK, DimC, DimP, DimQ, DimR, DimS}
}

// ParseDim converts a single-letter dimension name ("N", "K", ...) to a Dim.
func ParseDim(s string) (Dim, error) {
	for i, n := range dimNames {
		if n == s {
			return Dim(i), nil
		}
	}
	return 0, fmt.Errorf("workload: unknown dimension %q", s)
}

// Tensor identifies one of the three operand tensors.
type Tensor uint8

// The three operand tensors.
const (
	Weights Tensor = iota
	Inputs
	Outputs
	// NumTensors is the number of operand tensors.
	NumTensors
)

var tensorNames = [NumTensors]string{"Weights", "Inputs", "Outputs"}

// String returns the tensor's name.
func (t Tensor) String() string {
	if t < NumTensors {
		return tensorNames[t]
	}
	return fmt.Sprintf("Tensor(%d)", uint8(t))
}

// AllTensors lists every tensor. The slice is freshly allocated — callers
// may modify it.
func AllTensors() []Tensor {
	return []Tensor{Weights, Inputs, Outputs}
}

// ParseTensor converts a tensor name to a Tensor.
func ParseTensor(s string) (Tensor, error) {
	for i, n := range tensorNames {
		if n == s {
			return Tensor(i), nil
		}
	}
	return 0, fmt.Errorf("workload: unknown tensor %q", s)
}

// IsRead reports whether the tensor is a read-only operand (weights or
// inputs) as opposed to the read-modify-write output tensor.
func (t Tensor) IsRead() bool { return t == Weights || t == Inputs }

// relevance[t][d] reports whether iterating dimension d changes which
// element of tensor t is addressed. For inputs, P and Q couple with R and S
// through the sliding window, so all of P, Q, R, S are relevant.
var relevance = [NumTensors][NumDims]bool{
	Weights: {DimK: true, DimC: true, DimR: true, DimS: true},
	Inputs:  {DimN: true, DimC: true, DimP: true, DimQ: true, DimR: true, DimS: true},
	Outputs: {DimN: true, DimK: true, DimP: true, DimQ: true},
}

// Relevant reports whether dimension d addresses tensor t.
func Relevant(t Tensor, d Dim) bool { return relevance[t][d] }

// RelevantDims returns the dimensions that address tensor t, in canonical
// order.
func RelevantDims(t Tensor) []Dim {
	var out []Dim
	for _, d := range AllDims() {
		if relevance[t][d] {
			out = append(out, d)
		}
	}
	return out
}

// ReductionDims returns the dimensions that are reduced away when forming
// the output (C, R, S): iterating them accumulates into the same output
// element.
func ReductionDims() []Dim { return []Dim{DimC, DimR, DimS} }

// IsReduction reports whether d is a reduction dimension.
func IsReduction(d Dim) bool { return d == DimC || d == DimR || d == DimS }

// Point is a vector indexed by Dim, used for bounds, tile extents and loop
// trip counts.
type Point [NumDims]int

// Ones returns a Point with every coordinate set to 1.
func Ones() Point {
	var p Point
	for i := range p {
		p[i] = 1
	}
	return p
}

// Product returns the product of all coordinates.
func (p Point) Product() int64 {
	prod := int64(1)
	for _, v := range p {
		prod *= int64(v)
	}
	return prod
}

// Mul returns the coordinate-wise product of p and q.
func (p Point) Mul(q Point) Point {
	var out Point
	for i := range p {
		out[i] = p[i] * q[i]
	}
	return out
}

// Max returns the coordinate-wise maximum of p and q.
func (p Point) Max(q Point) Point {
	var out Point
	for i := range p {
		out[i] = p[i]
		if q[i] > out[i] {
			out[i] = q[i]
		}
	}
	return out
}

// String formats the point as "N1 K64 C64 P56 Q56 R3 S3".
func (p Point) String() string {
	s := ""
	for d := Dim(0); d < NumDims; d++ {
		if d > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s%d", d, p[d])
	}
	return s
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int) int {
	if b <= 0 {
		panic("workload: CeilDiv by non-positive divisor")
	}
	return (a + b - 1) / b
}
