package workload

import "testing"

// distinctShapes counts a network's distinct layer-shape fingerprints —
// the number of mapper searches a deduplicating evaluation actually runs.
func distinctShapes(n Network) int {
	seen := map[uint64]bool{}
	for i := range n.Layers {
		seen[n.Layers[i].ShapeFingerprint()] = true
	}
	return len(seen)
}

func TestVGG16Shape(t *testing.T) {
	n := VGG16(1)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.Layers) != 16 {
		t.Fatalf("VGG16 has %d layers, want 16", len(n.Layers))
	}
	convs, fcs := 0, 0
	for i := range n.Layers {
		switch n.Layers[i].Type {
		case Conv:
			convs++
			if n.Layers[i].R != 3 || n.Layers[i].StrideH != 1 {
				t.Errorf("%s: VGG16 convolutions are all 3x3 stride 1", n.Layers[i].Name)
			}
		case FC:
			fcs++
		}
	}
	if convs != 13 || fcs != 3 {
		t.Fatalf("VGG16 = %d convs + %d fcs, want 13 + 3", convs, fcs)
	}
	// Known totals: ~15.35 GMACs of convolution + ~123.6 MMACs of FC.
	macs := n.MACs()
	if macs < 15_300_000_000 || macs > 15_600_000_000 {
		t.Errorf("VGG16 MACs = %d, want ~15.47G", macs)
	}
	// ~138M parameters.
	if w := n.WeightElems(); w < 130_000_000 || w > 145_000_000 {
		t.Errorf("VGG16 weights = %d, want ~138M", w)
	}
}

func TestAlexNetShape(t *testing.T) {
	n := AlexNet(1)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.Layers) != 8 {
		t.Fatalf("AlexNet has %d layers, want 8", len(n.Layers))
	}
	c1 := n.Layers[0]
	if c1.R != 11 || c1.StrideH != 4 || c1.K != 96 {
		t.Errorf("conv1 = %v, want 11x11 stride 4, K=96", c1.String())
	}
	if !c1.IsStrided() {
		t.Error("conv1 should be strided")
	}
	// The last three layers are the large FC layers that under-utilize
	// window-parallel photonic hardware (the Fig. 3 phenomenon).
	for _, l := range n.Layers[5:] {
		if l.Type != FC {
			t.Errorf("%s: want FC", l.Name)
		}
	}
	macs := n.MACs()
	if macs < 1_000_000_000 || macs > 1_200_000_000 {
		t.Errorf("AlexNet (ungrouped) MACs = %d, want ~1.13G", macs)
	}
}

func TestResNet18Shape(t *testing.T) {
	n := ResNet18(1)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// conv1 + 4 per stage1 + 5 per stages 2..4 + fc = 1+4+15+1 = 21.
	if len(n.Layers) != 21 {
		t.Fatalf("ResNet18 has %d layers, want 21", len(n.Layers))
	}
	if n.Layers[0].R != 7 || n.Layers[0].StrideH != 2 {
		t.Errorf("stem = %v, want 7x7 stride 2", n.Layers[0].String())
	}
	downsamples := 0
	for i := range n.Layers {
		if n.Layers[i].IsPointwise() && n.Layers[i].Type == Conv {
			downsamples++
			if !n.Layers[i].IsStrided() {
				t.Errorf("%s: downsample convs are stride 2", n.Layers[i].Name)
			}
		}
	}
	if downsamples != 3 {
		t.Errorf("ResNet18 has %d 1x1 downsample convs, want 3", downsamples)
	}
	macs := n.MACs()
	if macs < 1_780_000_000 || macs > 1_870_000_000 {
		t.Errorf("ResNet18 MACs = %d, want ~1.82G", macs)
	}
}

func TestZooByName(t *testing.T) {
	for name := range Zoo() {
		n, err := ByName(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		if want := 2 * max(1, n.Layers[0].NPerBatch); n.Layers[0].N != want {
			t.Errorf("%s: batch not applied: N = %d, want %d", name, n.Layers[0].N, want)
		}
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ByName("lenet", 1); err == nil {
		t.Error("ByName(lenet) succeeded, want error")
	}
}

func TestWithBatchScalesMACsLinearly(t *testing.T) {
	n1 := ResNet18(1)
	n8 := ResNet18(8)
	if n8.MACs() != 8*n1.MACs() {
		t.Errorf("batch-8 MACs = %d, want %d", n8.MACs(), 8*n1.MACs())
	}
	// Weight footprint is batch independent.
	if n8.WeightElems() != n1.WeightElems() {
		t.Errorf("weights changed with batch")
	}
}

func TestMaxActivationElems(t *testing.T) {
	n := ResNet18(1)
	// The largest activation in ResNet18 at batch 1 is conv1's output
	// 64x112x112 = 802816 elements (its input is 3x229x229 ~ 157k).
	got := n.MaxActivationElems()
	if got != 64*112*112 {
		t.Errorf("MaxActivationElems = %d, want %d", got, 64*112*112)
	}
}

func TestResNet50Shape(t *testing.T) {
	n := ResNet50(1)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// stem + 16 bottlenecks x 3 + 4 downsamples + fc.
	if len(n.Layers) != 54 {
		t.Fatalf("ResNet50 has %d layers, want 54", len(n.Layers))
	}
	pointwise := 0
	for i := range n.Layers {
		if n.Layers[i].Type == Conv && n.Layers[i].IsPointwise() {
			pointwise++
		}
	}
	// 2 x 16 bottleneck 1x1s + 4 downsamples: pointwise convs dominate.
	if pointwise != 36 {
		t.Errorf("ResNet50 has %d pointwise convs, want 36", pointwise)
	}
	// Published: ~4.1 GMACs, ~25.5M parameters (conv + fc, BN excluded).
	if macs := n.MACs(); macs < 3_950_000_000 || macs > 4_250_000_000 {
		t.Errorf("ResNet50 MACs = %d, want ~4.1G", macs)
	}
	if w := n.WeightElems(); w < 25_000_000 || w > 26_000_000 {
		t.Errorf("ResNet50 weights = %d, want ~25.5M", w)
	}
	// Repeated bottlenecks collapse: 54 layers, 24 distinct shapes (the
	// stage-1 stride-1 downsample even coincides with its conv3).
	if d := distinctShapes(n); d != 24 {
		t.Errorf("ResNet50 distinct shapes = %d, want 24", d)
	}
}

func TestMobileNetV2Shape(t *testing.T) {
	n := MobileNetV2(1)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// stem + block1 (no expand) x 2 + 16 blocks x 3 + head + fc.
	if len(n.Layers) != 53 {
		t.Fatalf("MobileNetV2 has %d layers, want 53", len(n.Layers))
	}
	dw := 0
	for i := range n.Layers {
		l := &n.Layers[i]
		if l.K == 1 && l.C == 1 && l.R == 3 {
			dw++
			if l.NPerBatch < 16 {
				t.Errorf("%s: depthwise NPerBatch = %d, want the folded channel count", l.Name, l.NPerBatch)
			}
		}
	}
	if dw != 17 {
		t.Errorf("MobileNetV2 has %d depthwise layers, want 17", dw)
	}
	// Published: ~300M multiply-adds; ~3.5M parameters (conv + fc, BN
	// excluded) minus the ~62k depthwise filters the batch folding
	// collapses (see NewDepthwise).
	if macs := n.MACs(); macs < 280_000_000 || macs > 320_000_000 {
		t.Errorf("MobileNetV2 MACs = %d, want ~300M", macs)
	}
	if w := n.WeightElems(); w < 3_300_000 || w > 3_600_000 {
		t.Errorf("MobileNetV2 weights = %d, want ~3.44M", w)
	}
}

func TestBERTBaseShape(t *testing.T) {
	n := BERTBase(1)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.Layers) != 96 {
		t.Fatalf("BERTBase has %d layers, want 96 (12 blocks x 8 matmuls)", len(n.Layers))
	}
	for i := range n.Layers {
		if n.Layers[i].Type != FC {
			t.Errorf("%s: transformer blocks are all matmul (FC) layers", n.Layers[i].Name)
		}
	}
	// Published: ~11.2 GMACs (22.4 GFLOPs) at sequence 128; ~85M
	// projection parameters (embeddings excluded).
	if macs := n.MACs(); macs < 11_000_000_000 || macs > 11_350_000_000 {
		t.Errorf("BERTBase MACs = %d, want ~11.17G", macs)
	}
	if w := n.WeightElems(); w < 84_500_000 || w > 85_500_000 {
		t.Errorf("BERTBase weights = %d, want ~85.1M", w)
	}
	// The 12 identical blocks collapse to one block's distinct matmul
	// shapes, and q/k/v/out share one 768x768 shape: 96 layers, 5 distinct
	// searches — the shape-dedup property that makes transformer sweeps
	// cheap.
	if d := distinctShapes(n); d != 5 {
		t.Errorf("BERTBase distinct shapes = %d, want 5", d)
	}
}

func TestGPT2SmallShape(t *testing.T) {
	n := GPT2Small(1)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.Layers) != 96 {
		t.Fatalf("GPT2Small has %d layers, want 96", len(n.Layers))
	}
	// Dense accounting at the full 1024-token context: ~106 GMACs.
	if macs := n.MACs(); macs < 105_000_000_000 || macs > 108_000_000_000 {
		t.Errorf("GPT2Small MACs = %d, want ~106.3G", macs)
	}
	if d := distinctShapes(n); d != 5 {
		t.Errorf("GPT2Small distinct shapes = %d, want 5", d)
	}
	// Same block shape as BERT-base; only the folded sequence axis grows.
	if n.WeightElems() <= 85_000_000 {
		t.Errorf("GPT2Small weights = %d, want > 85M (longer-seq attention operands)", n.WeightElems())
	}
}

// TestWithBatchPreservesFoldedAxes pins the NPerBatch contract: batching a
// transformer or depthwise workload rescales N instead of overwriting the
// folded sequence / channel axis.
func TestWithBatchPreservesFoldedAxes(t *testing.T) {
	for _, name := range []string{"bert_base", "gpt2_small", "mobilenet_v2"} {
		n1, err := ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		n4, err := ByName(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		if n4.MACs() != 4*n1.MACs() {
			t.Errorf("%s: batch-4 MACs = %d, want %d", name, n4.MACs(), 4*n1.MACs())
		}
		// WithBatch on an already-batched network is idempotent per batch:
		// the sweep engine resolves at batch b and re-applies WithBatch(b).
		reb := n4.WithBatch(4)
		if reb.MACs() != n4.MACs() {
			t.Errorf("%s: WithBatch(4) twice changed MACs: %d != %d", name, reb.MACs(), n4.MACs())
		}
		if n4.WeightElems() != n1.WeightElems() {
			t.Errorf("%s: weights changed with batch", name)
		}
	}
}

// TestZooEntriesConsistent keeps the registry and the name map in sync
// and guards the curated metadata every front end renders.
func TestZooEntriesConsistent(t *testing.T) {
	entries := ZooEntries()
	if len(entries) != len(Zoo()) {
		t.Fatalf("ZooEntries has %d entries, Zoo map %d", len(entries), len(Zoo()))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.Name == "" || e.Family == "" || e.Description == "" || e.Build == nil {
			t.Errorf("entry %+v: all fields are required", e.Name)
		}
		if seen[e.Name] {
			t.Errorf("duplicate zoo entry %q", e.Name)
		}
		seen[e.Name] = true
		n := e.Build(1)
		if n.Name != e.Name {
			t.Errorf("entry %q builds network named %q", e.Name, n.Name)
		}
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
	}
	families := map[string]bool{}
	for _, e := range entries {
		families[e.Family] = true
	}
	for _, want := range []string{"conv-era cnn", "modern cnn", "transformer"} {
		if !families[want] {
			t.Errorf("zoo has no %q entry", want)
		}
	}
}

func TestResNet34Shape(t *testing.T) {
	n := ResNet34(1)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// conv1 + 2*(3+4+6+3) convs + 3 downsamples + fc = 1 + 32 + 3 + 1 = 37.
	if len(n.Layers) != 37 {
		t.Fatalf("ResNet34 has %d layers, want 37", len(n.Layers))
	}
	// ~3.67 GMACs at 224x224.
	macs := n.MACs()
	if macs < 3_500_000_000 || macs > 3_800_000_000 {
		t.Errorf("ResNet34 MACs = %d, want ~3.67G", macs)
	}
	// ~21.8M parameters.
	if w := n.WeightElems(); w < 20_000_000 || w > 23_000_000 {
		t.Errorf("ResNet34 weights = %d, want ~21.8M", w)
	}
	// Deeper than ResNet18 in both MACs and weights.
	r18 := ResNet18(1)
	if macs <= r18.MACs() || n.WeightElems() <= r18.WeightElems() {
		t.Error("ResNet34 should exceed ResNet18")
	}
}
