package workload

import "testing"

func TestVGG16Shape(t *testing.T) {
	n := VGG16(1)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.Layers) != 16 {
		t.Fatalf("VGG16 has %d layers, want 16", len(n.Layers))
	}
	convs, fcs := 0, 0
	for i := range n.Layers {
		switch n.Layers[i].Type {
		case Conv:
			convs++
			if n.Layers[i].R != 3 || n.Layers[i].StrideH != 1 {
				t.Errorf("%s: VGG16 convolutions are all 3x3 stride 1", n.Layers[i].Name)
			}
		case FC:
			fcs++
		}
	}
	if convs != 13 || fcs != 3 {
		t.Fatalf("VGG16 = %d convs + %d fcs, want 13 + 3", convs, fcs)
	}
	// Known totals: ~15.35 GMACs of convolution + ~123.6 MMACs of FC.
	macs := n.MACs()
	if macs < 15_300_000_000 || macs > 15_600_000_000 {
		t.Errorf("VGG16 MACs = %d, want ~15.47G", macs)
	}
	// ~138M parameters.
	if w := n.WeightElems(); w < 130_000_000 || w > 145_000_000 {
		t.Errorf("VGG16 weights = %d, want ~138M", w)
	}
}

func TestAlexNetShape(t *testing.T) {
	n := AlexNet(1)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.Layers) != 8 {
		t.Fatalf("AlexNet has %d layers, want 8", len(n.Layers))
	}
	c1 := n.Layers[0]
	if c1.R != 11 || c1.StrideH != 4 || c1.K != 96 {
		t.Errorf("conv1 = %v, want 11x11 stride 4, K=96", c1.String())
	}
	if !c1.IsStrided() {
		t.Error("conv1 should be strided")
	}
	// The last three layers are the large FC layers that under-utilize
	// window-parallel photonic hardware (the Fig. 3 phenomenon).
	for _, l := range n.Layers[5:] {
		if l.Type != FC {
			t.Errorf("%s: want FC", l.Name)
		}
	}
	macs := n.MACs()
	if macs < 1_000_000_000 || macs > 1_200_000_000 {
		t.Errorf("AlexNet (ungrouped) MACs = %d, want ~1.13G", macs)
	}
}

func TestResNet18Shape(t *testing.T) {
	n := ResNet18(1)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// conv1 + 4 per stage1 + 5 per stages 2..4 + fc = 1+4+15+1 = 21.
	if len(n.Layers) != 21 {
		t.Fatalf("ResNet18 has %d layers, want 21", len(n.Layers))
	}
	if n.Layers[0].R != 7 || n.Layers[0].StrideH != 2 {
		t.Errorf("stem = %v, want 7x7 stride 2", n.Layers[0].String())
	}
	downsamples := 0
	for i := range n.Layers {
		if n.Layers[i].IsPointwise() && n.Layers[i].Type == Conv {
			downsamples++
			if !n.Layers[i].IsStrided() {
				t.Errorf("%s: downsample convs are stride 2", n.Layers[i].Name)
			}
		}
	}
	if downsamples != 3 {
		t.Errorf("ResNet18 has %d 1x1 downsample convs, want 3", downsamples)
	}
	macs := n.MACs()
	if macs < 1_780_000_000 || macs > 1_870_000_000 {
		t.Errorf("ResNet18 MACs = %d, want ~1.82G", macs)
	}
}

func TestZooByName(t *testing.T) {
	for name := range Zoo() {
		n, err := ByName(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		if n.Layers[0].N != 2 {
			t.Errorf("%s: batch not applied", name)
		}
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ByName("lenet", 1); err == nil {
		t.Error("ByName(lenet) succeeded, want error")
	}
}

func TestWithBatchScalesMACsLinearly(t *testing.T) {
	n1 := ResNet18(1)
	n8 := ResNet18(8)
	if n8.MACs() != 8*n1.MACs() {
		t.Errorf("batch-8 MACs = %d, want %d", n8.MACs(), 8*n1.MACs())
	}
	// Weight footprint is batch independent.
	if n8.WeightElems() != n1.WeightElems() {
		t.Errorf("weights changed with batch")
	}
}

func TestMaxActivationElems(t *testing.T) {
	n := ResNet18(1)
	// The largest activation in ResNet18 at batch 1 is conv1's output
	// 64x112x112 = 802816 elements (its input is 3x229x229 ~ 157k).
	got := n.MaxActivationElems()
	if got != 64*112*112 {
		t.Errorf("MaxActivationElems = %d, want %d", got, 64*112*112)
	}
}

func TestResNet34Shape(t *testing.T) {
	n := ResNet34(1)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// conv1 + 2*(3+4+6+3) convs + 3 downsamples + fc = 1 + 32 + 3 + 1 = 37.
	if len(n.Layers) != 37 {
		t.Fatalf("ResNet34 has %d layers, want 37", len(n.Layers))
	}
	// ~3.67 GMACs at 224x224.
	macs := n.MACs()
	if macs < 3_500_000_000 || macs > 3_800_000_000 {
		t.Errorf("ResNet34 MACs = %d, want ~3.67G", macs)
	}
	// ~21.8M parameters.
	if w := n.WeightElems(); w < 20_000_000 || w > 23_000_000 {
		t.Errorf("ResNet34 weights = %d, want ~21.8M", w)
	}
	// Deeper than ResNet18 in both MACs and weights.
	r18 := ResNet18(1)
	if macs <= r18.MACs() || n.WeightElems() <= r18.WeightElems() {
		t.Error("ResNet34 should exceed ResNet18")
	}
}
