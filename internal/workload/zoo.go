package workload

import "fmt"

// This file contains the layer tables of the built-in workload zoo. The
// conv-era entries are the DNNs evaluated in the paper: VGG16 and AlexNet
// (throughput validation, Fig. 3) and ResNet18 (full-system and
// architecture exploration, Figs. 4 and 5); shapes follow the original
// publications with 224x224 ImageNet inputs. AlexNet is modeled ungrouped
// (the common convention in dataflow-modeling work; grouping does not
// change the under-utilization phenomena the paper studies: large strided
// filters and fully-connected layers). The modern-CNN entries (ResNet-50's
// bottleneck 1x1s, MobileNetV2's depthwise+pointwise inverted residuals)
// and the transformer entries (BERT-base and GPT-2-small encoder blocks as
// matmuls with sequence folded into the batch dimension) open the scenario
// axes the paper's related work motivates: pointwise-dominated and
// attention-style workloads stress photonic organizations very differently
// from 3x3-conv CNNs.

// VGG16 returns the VGG16 network (13 convolutions + 3 fully-connected
// layers) at the given batch size.
func VGG16(batch int) Network {
	type cfg struct {
		name string
		k, c int
		hw   int
	}
	convs := []cfg{
		{"conv1_1", 64, 3, 224}, {"conv1_2", 64, 64, 224},
		{"conv2_1", 128, 64, 112}, {"conv2_2", 128, 128, 112},
		{"conv3_1", 256, 128, 56}, {"conv3_2", 256, 256, 56}, {"conv3_3", 256, 256, 56},
		{"conv4_1", 512, 256, 28}, {"conv4_2", 512, 512, 28}, {"conv4_3", 512, 512, 28},
		{"conv5_1", 512, 512, 14}, {"conv5_2", 512, 512, 14}, {"conv5_3", 512, 512, 14},
	}
	n := Network{Name: "vgg16"}
	for _, c := range convs {
		n.Layers = append(n.Layers, NewConv(c.name, batch, c.k, c.c, c.hw, c.hw, 3, 3, 1, 1))
	}
	n.Layers = append(n.Layers,
		NewFC("fc6", batch, 4096, 25088),
		NewFC("fc7", batch, 4096, 4096),
		NewFC("fc8", batch, 1000, 4096),
	)
	return n
}

// AlexNet returns the (ungrouped) AlexNet network at the given batch size:
// five convolutions — including the 11x11 stride-4 first layer and the 5x5
// second layer that under-utilize window-parallel hardware — plus three
// fully-connected layers.
func AlexNet(batch int) Network {
	n := Network{Name: "alexnet"}
	n.Layers = append(n.Layers,
		NewConv("conv1", batch, 96, 3, 55, 55, 11, 11, 4, 2),
		NewConv("conv2", batch, 256, 96, 27, 27, 5, 5, 1, 2),
		NewConv("conv3", batch, 384, 256, 13, 13, 3, 3, 1, 1),
		NewConv("conv4", batch, 384, 384, 13, 13, 3, 3, 1, 1),
		NewConv("conv5", batch, 256, 384, 13, 13, 3, 3, 1, 1),
		NewFC("fc6", batch, 4096, 9216),
		NewFC("fc7", batch, 4096, 4096),
		NewFC("fc8", batch, 1000, 4096),
	)
	return n
}

// ResNet18 returns the ResNet-18 network at the given batch size: the 7x7
// stride-2 stem, four stages of basic blocks (including the 1x1 stride-2
// downsample convolutions on the residual paths), and the final classifier.
func ResNet18(batch int) Network {
	n := Network{Name: "resnet18"}
	add := func(l Layer) { n.Layers = append(n.Layers, l) }

	add(NewConv("conv1", batch, 64, 3, 112, 112, 7, 7, 2, 3))
	// After 3x3/2 max pooling the feature map is 56x56.

	// Stage 1: 64 channels, 56x56, two basic blocks, no downsample.
	for b := 1; b <= 2; b++ {
		add(NewConv(fmt.Sprintf("layer1.%d.conv1", b), batch, 64, 64, 56, 56, 3, 3, 1, 1))
		add(NewConv(fmt.Sprintf("layer1.%d.conv2", b), batch, 64, 64, 56, 56, 3, 3, 1, 1))
	}

	stage := func(idx, cin, cout, hw int) {
		// Block 1 halves the feature map and doubles channels.
		add(NewConv(fmt.Sprintf("layer%d.1.conv1", idx), batch, cout, cin, hw, hw, 3, 3, 2, 1))
		add(NewConv(fmt.Sprintf("layer%d.1.conv2", idx), batch, cout, cout, hw, hw, 3, 3, 1, 1))
		add(NewConv(fmt.Sprintf("layer%d.1.downsample", idx), batch, cout, cin, hw, hw, 1, 1, 2, 0))
		// Block 2 is shape preserving.
		add(NewConv(fmt.Sprintf("layer%d.2.conv1", idx), batch, cout, cout, hw, hw, 3, 3, 1, 1))
		add(NewConv(fmt.Sprintf("layer%d.2.conv2", idx), batch, cout, cout, hw, hw, 3, 3, 1, 1))
	}
	stage(2, 64, 128, 28)
	stage(3, 128, 256, 14)
	stage(4, 256, 512, 7)

	add(NewFC("fc", batch, 1000, 512))
	return n
}

// ResNet34 returns the ResNet-34 network at the given batch size: the same
// stem and stage structure as ResNet-18 with {3,4,6,3} basic blocks.
func ResNet34(batch int) Network {
	n := Network{Name: "resnet34"}
	add := func(l Layer) { n.Layers = append(n.Layers, l) }

	add(NewConv("conv1", batch, 64, 3, 112, 112, 7, 7, 2, 3))

	stage := func(idx, cin, cout, hw, blocks int, downsample bool) {
		for b := 1; b <= blocks; b++ {
			in, stride := cout, 1
			if b == 1 {
				in = cin
				if downsample {
					stride = 2
				}
			}
			add(NewConv(fmt.Sprintf("layer%d.%d.conv1", idx, b), batch, cout, in, hw, hw, 3, 3, stride, 1))
			add(NewConv(fmt.Sprintf("layer%d.%d.conv2", idx, b), batch, cout, cout, hw, hw, 3, 3, 1, 1))
			if b == 1 && downsample {
				add(NewConv(fmt.Sprintf("layer%d.%d.downsample", idx, b), batch, cout, cin, hw, hw, 1, 1, 2, 0))
			}
		}
	}
	stage(1, 64, 64, 56, 3, false)
	stage(2, 64, 128, 28, 4, true)
	stage(3, 128, 256, 14, 6, true)
	stage(4, 256, 512, 7, 3, true)

	add(NewFC("fc", batch, 1000, 512))
	return n
}

// ResNet50 returns the ResNet-50 network at the given batch size: the 7x7
// stride-2 stem and four stages of bottleneck blocks ({3,4,6,3} blocks of
// 1x1 reduce / 3x3 / 1x1 expand, stride on the 3x3 as in the torchvision
// reference, with 1x1 projection convolutions on the residual paths), and
// the final classifier. The bottleneck 1x1s make pointwise convolutions —
// no window parallelism to exploit — the dominant layer population.
func ResNet50(batch int) Network {
	n := Network{Name: "resnet50"}
	add := func(l Layer) { n.Layers = append(n.Layers, l) }

	add(NewConv("conv1", batch, 64, 3, 112, 112, 7, 7, 2, 3))
	// After 3x3/2 max pooling the feature map is 56x56.

	in := 64
	stage := func(idx, planes, blocks, stride, hwOut int) {
		hwIn := hwOut * stride
		for b := 1; b <= blocks; b++ {
			s, hw1 := 1, hwOut
			if b == 1 {
				s, hw1 = stride, hwIn
			}
			add(NewConv(fmt.Sprintf("layer%d.%d.conv1", idx, b), batch, planes, in, hw1, hw1, 1, 1, 1, 0))
			add(NewConv(fmt.Sprintf("layer%d.%d.conv2", idx, b), batch, planes, planes, hwOut, hwOut, 3, 3, s, 1))
			add(NewConv(fmt.Sprintf("layer%d.%d.conv3", idx, b), batch, 4*planes, planes, hwOut, hwOut, 1, 1, 1, 0))
			if b == 1 {
				add(NewConv(fmt.Sprintf("layer%d.%d.downsample", idx, b), batch, 4*planes, in, hwOut, hwOut, 1, 1, s, 0))
			}
			in = 4 * planes
		}
	}
	stage(1, 64, 3, 1, 56)
	stage(2, 128, 4, 2, 28)
	stage(3, 256, 6, 2, 14)
	stage(4, 512, 3, 2, 7)

	add(NewFC("fc", batch, 1000, 2048))
	return n
}

// MobileNetV2 returns the MobileNetV2 (width 1.0, 224x224) network at the
// given batch size: the 3x3 stride-2 stem, seven groups of inverted
// residual blocks (1x1 expansion, 3x3 depthwise, 1x1 linear projection),
// the 1x1 head convolution and the classifier. Depthwise layers use the
// batch-folded dense projection (see NewDepthwise): MACs and activation
// footprints are exact; the per-channel filters are modeled as one shared
// filter, so the ~62k depthwise weights (of ~3.5M parameters) collapse to
// a few tens.
func MobileNetV2(batch int) Network {
	n := Network{Name: "mobilenet_v2"}
	add := func(l Layer) { n.Layers = append(n.Layers, l) }

	add(NewConv("stem", batch, 32, 3, 112, 112, 3, 3, 2, 1))

	in, hw, block := 32, 112, 0
	group := func(t, c, blocks, stride int) {
		for b := 1; b <= blocks; b++ {
			block++
			s := 1
			if b == 1 {
				s = stride
			}
			hidden := in * t
			if t != 1 {
				add(NewConv(fmt.Sprintf("block%d.expand", block), batch, hidden, in, hw, hw, 1, 1, 1, 0))
			}
			hw /= s
			add(NewDepthwise(fmt.Sprintf("block%d.dw", block), batch, hidden, hw, hw, 3, 3, s, 1))
			add(NewConv(fmt.Sprintf("block%d.project", block), batch, c, hidden, hw, hw, 1, 1, 1, 0))
			in = c
		}
	}
	// The paper's (expansion, channels, blocks, stride) table.
	group(1, 16, 1, 1)
	group(6, 24, 2, 2)
	group(6, 32, 3, 2)
	group(6, 64, 4, 2)
	group(6, 96, 3, 1)
	group(6, 160, 3, 2)
	group(6, 320, 1, 1)

	add(NewConv("head", batch, 1280, 320, 7, 7, 1, 1, 1, 0))
	add(NewFC("fc", batch, 1000, 1280))
	return n
}

// encoderBlocks builds `blocks` identical transformer encoder blocks as
// matmul layers with the sequence axis folded into the batch dimension
// (N = batch x seq for the projections, batch x heads x seq for the
// per-head attention matmuls; see Layer.NPerBatch). The QK^T score and
// attention-x-V context matmuls are activation-activation products: their
// K operand occupies the Weights slot of the 7-D projection, shared
// across the folded head axis — exact MACs, optimistic K/V reuse across
// heads. Attention masking (causal or padding) is ignored, as in dense
// FLOP accounting.
func encoderBlocks(prefix string, batch, blocks, seq, hidden, heads, ffn int) []Layer {
	headDim := hidden / heads
	at := func(name string, perBatch, k, c int) Layer {
		l := NewMatmul(name, batch*perBatch, k, c)
		l.NPerBatch = perBatch
		return l
	}
	var layers []Layer
	for i := 1; i <= blocks; i++ {
		p := fmt.Sprintf("%s%d", prefix, i)
		layers = append(layers,
			at(p+".attn.query", seq, hidden, hidden),
			at(p+".attn.key", seq, hidden, hidden),
			at(p+".attn.value", seq, hidden, hidden),
			at(p+".attn.scores", heads*seq, seq, headDim),
			at(p+".attn.context", heads*seq, headDim, seq),
			at(p+".attn.out", seq, hidden, hidden),
			at(p+".ffn.expand", seq, ffn, hidden),
			at(p+".ffn.project", seq, hidden, ffn),
		)
	}
	return layers
}

// BERTBase returns the BERT-base encoder stack (12 blocks, hidden 768, 12
// heads, FFN 3072) at sequence length 128, expressed as matmul layers with
// batch x sequence folded into N. Embedding lookup, layer norms, softmax
// and the pooler are omitted (they are not MAC workloads); at batch 1 the
// stack is ~11.2 GMACs over ~85M projection parameters.
func BERTBase(batch int) Network {
	return Network{Name: "bert_base", Layers: encoderBlocks("enc", batch, 12, 128, 768, 12, 3072)}
}

// GPT2Small returns the GPT-2-small decoder stack (12 blocks, hidden 768,
// 12 heads, FFN 3072) at its full 1024-token context, expressed as matmul
// layers with batch x sequence folded into N. Causal masking is ignored
// (dense-matmul accounting, the convention of FLOP tables); embeddings and
// normalization are omitted. At batch 1 the stack is ~106 GMACs — a
// long-sequence stress of the same block shape BERTBase exercises at
// sequence 128.
func GPT2Small(batch int) Network {
	return Network{Name: "gpt2_small", Layers: encoderBlocks("block", batch, 12, 1024, 768, 12, 3072)}
}

// ZooEntry describes one built-in workload: its registry name, a coarse
// family tag ("conv-era cnn", "modern cnn", "transformer"), a one-line
// description (surfaced by `photoloop networks`, GET /v1/networks and the
// generated README table), and the builder.
type ZooEntry struct {
	Name        string
	Family      string
	Description string
	Build       func(batch int) Network
}

// ZooEntries returns the built-in workloads in curated order (paper
// workloads first, then the modern-CNN and transformer extensions). The
// slice is freshly allocated; callers may reorder it.
func ZooEntries() []ZooEntry {
	return []ZooEntry{
		{"vgg16", "conv-era cnn", "13 uniform 3x3 convs + 3 large FC layers (paper Fig. 3)", VGG16},
		{"alexnet", "conv-era cnn", "11x11/4 stem and 5x5 conv2 that under-utilize window-parallel hardware (paper Fig. 3)", AlexNet},
		{"resnet18", "conv-era cnn", "basic-block residual CNN (paper Figs. 4-5)", ResNet18},
		{"resnet34", "conv-era cnn", "deeper basic-block residual CNN ({3,4,6,3} blocks)", ResNet34},
		{"resnet50", "modern cnn", "bottleneck residual CNN dominated by pointwise 1x1 convs", ResNet50},
		{"mobilenet_v2", "modern cnn", "inverted residuals: 1x1 expand, 3x3 depthwise, 1x1 project", MobileNetV2},
		{"bert_base", "transformer", "12 encoder blocks, hidden 768, seq 128, as batched matmuls", BERTBase},
		{"gpt2_small", "transformer", "12 decoder blocks, hidden 768, seq 1024, as batched matmuls", GPT2Small},
	}
}

// Zoo returns every built-in network builder keyed by name.
func Zoo() map[string]func(batch int) Network {
	entries := ZooEntries()
	m := make(map[string]func(int) Network, len(entries))
	for _, e := range entries {
		m[e.Name] = e.Build
	}
	return m
}

// ByName builds a zoo network by name.
func ByName(name string, batch int) (Network, error) {
	b, ok := Zoo()[name]
	if !ok {
		return Network{}, fmt.Errorf("workload: unknown network %q", name)
	}
	return b(batch), nil
}
