package workload

import "fmt"

// This file contains the layer tables for the three DNNs evaluated in the
// paper: VGG16 and AlexNet (throughput validation, Fig. 3) and ResNet18
// (full-system and architecture exploration, Figs. 4 and 5). Shapes follow
// the original publications with 224x224 ImageNet inputs. AlexNet is
// modeled ungrouped (the common convention in dataflow-modeling work;
// grouping does not change the under-utilization phenomena the paper
// studies: large strided filters and fully-connected layers).

// VGG16 returns the VGG16 network (13 convolutions + 3 fully-connected
// layers) at the given batch size.
func VGG16(batch int) Network {
	type cfg struct {
		name string
		k, c int
		hw   int
	}
	convs := []cfg{
		{"conv1_1", 64, 3, 224}, {"conv1_2", 64, 64, 224},
		{"conv2_1", 128, 64, 112}, {"conv2_2", 128, 128, 112},
		{"conv3_1", 256, 128, 56}, {"conv3_2", 256, 256, 56}, {"conv3_3", 256, 256, 56},
		{"conv4_1", 512, 256, 28}, {"conv4_2", 512, 512, 28}, {"conv4_3", 512, 512, 28},
		{"conv5_1", 512, 512, 14}, {"conv5_2", 512, 512, 14}, {"conv5_3", 512, 512, 14},
	}
	n := Network{Name: "vgg16"}
	for _, c := range convs {
		n.Layers = append(n.Layers, NewConv(c.name, batch, c.k, c.c, c.hw, c.hw, 3, 3, 1, 1))
	}
	n.Layers = append(n.Layers,
		NewFC("fc6", batch, 4096, 25088),
		NewFC("fc7", batch, 4096, 4096),
		NewFC("fc8", batch, 1000, 4096),
	)
	return n
}

// AlexNet returns the (ungrouped) AlexNet network at the given batch size:
// five convolutions — including the 11x11 stride-4 first layer and the 5x5
// second layer that under-utilize window-parallel hardware — plus three
// fully-connected layers.
func AlexNet(batch int) Network {
	n := Network{Name: "alexnet"}
	n.Layers = append(n.Layers,
		NewConv("conv1", batch, 96, 3, 55, 55, 11, 11, 4, 2),
		NewConv("conv2", batch, 256, 96, 27, 27, 5, 5, 1, 2),
		NewConv("conv3", batch, 384, 256, 13, 13, 3, 3, 1, 1),
		NewConv("conv4", batch, 384, 384, 13, 13, 3, 3, 1, 1),
		NewConv("conv5", batch, 256, 384, 13, 13, 3, 3, 1, 1),
		NewFC("fc6", batch, 4096, 9216),
		NewFC("fc7", batch, 4096, 4096),
		NewFC("fc8", batch, 1000, 4096),
	)
	return n
}

// ResNet18 returns the ResNet-18 network at the given batch size: the 7x7
// stride-2 stem, four stages of basic blocks (including the 1x1 stride-2
// downsample convolutions on the residual paths), and the final classifier.
func ResNet18(batch int) Network {
	n := Network{Name: "resnet18"}
	add := func(l Layer) { n.Layers = append(n.Layers, l) }

	add(NewConv("conv1", batch, 64, 3, 112, 112, 7, 7, 2, 3))
	// After 3x3/2 max pooling the feature map is 56x56.

	// Stage 1: 64 channels, 56x56, two basic blocks, no downsample.
	for b := 1; b <= 2; b++ {
		add(NewConv(fmt.Sprintf("layer1.%d.conv1", b), batch, 64, 64, 56, 56, 3, 3, 1, 1))
		add(NewConv(fmt.Sprintf("layer1.%d.conv2", b), batch, 64, 64, 56, 56, 3, 3, 1, 1))
	}

	stage := func(idx, cin, cout, hw int) {
		// Block 1 halves the feature map and doubles channels.
		add(NewConv(fmt.Sprintf("layer%d.1.conv1", idx), batch, cout, cin, hw, hw, 3, 3, 2, 1))
		add(NewConv(fmt.Sprintf("layer%d.1.conv2", idx), batch, cout, cout, hw, hw, 3, 3, 1, 1))
		add(NewConv(fmt.Sprintf("layer%d.1.downsample", idx), batch, cout, cin, hw, hw, 1, 1, 2, 0))
		// Block 2 is shape preserving.
		add(NewConv(fmt.Sprintf("layer%d.2.conv1", idx), batch, cout, cout, hw, hw, 3, 3, 1, 1))
		add(NewConv(fmt.Sprintf("layer%d.2.conv2", idx), batch, cout, cout, hw, hw, 3, 3, 1, 1))
	}
	stage(2, 64, 128, 28)
	stage(3, 128, 256, 14)
	stage(4, 256, 512, 7)

	add(NewFC("fc", batch, 1000, 512))
	return n
}

// ResNet34 returns the ResNet-34 network at the given batch size: the same
// stem and stage structure as ResNet-18 with {3,4,6,3} basic blocks.
func ResNet34(batch int) Network {
	n := Network{Name: "resnet34"}
	add := func(l Layer) { n.Layers = append(n.Layers, l) }

	add(NewConv("conv1", batch, 64, 3, 112, 112, 7, 7, 2, 3))

	stage := func(idx, cin, cout, hw, blocks int, downsample bool) {
		for b := 1; b <= blocks; b++ {
			in, stride := cout, 1
			if b == 1 {
				in = cin
				if downsample {
					stride = 2
				}
			}
			add(NewConv(fmt.Sprintf("layer%d.%d.conv1", idx, b), batch, cout, in, hw, hw, 3, 3, stride, 1))
			add(NewConv(fmt.Sprintf("layer%d.%d.conv2", idx, b), batch, cout, cout, hw, hw, 3, 3, 1, 1))
			if b == 1 && downsample {
				add(NewConv(fmt.Sprintf("layer%d.%d.downsample", idx, b), batch, cout, cin, hw, hw, 1, 1, 2, 0))
			}
		}
	}
	stage(1, 64, 64, 56, 3, false)
	stage(2, 64, 128, 28, 4, true)
	stage(3, 128, 256, 14, 6, true)
	stage(4, 256, 512, 7, 3, true)

	add(NewFC("fc", batch, 1000, 512))
	return n
}

// Zoo returns every built-in network builder keyed by name.
func Zoo() map[string]func(batch int) Network {
	return map[string]func(int) Network{
		"vgg16":    VGG16,
		"alexnet":  AlexNet,
		"resnet18": ResNet18,
		"resnet34": ResNet34,
	}
}

// ByName builds a zoo network by name.
func ByName(name string, batch int) (Network, error) {
	b, ok := Zoo()[name]
	if !ok {
		return Network{}, fmt.Errorf("workload: unknown network %q", name)
	}
	return b(batch), nil
}
