package workload

// FNV-1a parameters shared by the framework's word-at-a-time fingerprint
// kernels (layer shapes here, mapping schedules in internal/mapping,
// search options in internal/mapper). The outputs are combined into cache
// keys, so the kernels must stay consistent — hence one definition.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Fnv64a accumulates 64-bit words into an FNV-1a hash.
type Fnv64a uint64

// NewFnv64a returns the FNV-1a offset basis.
func NewFnv64a() Fnv64a { return fnvOffset64 }

// Mix folds one word into the hash.
func (h *Fnv64a) Mix(v uint64) { *h = (*h ^ Fnv64a(v)) * fnvPrime64 }

// Sum returns the accumulated hash.
func (h Fnv64a) Sum() uint64 { return uint64(h) }
