package workload

import "strings"

// TensorSet is a small bitmask set of operand tensors, used by architecture
// levels to declare which tensors they keep (vs. bypass).
type TensorSet uint8

// NewTensorSet builds a set from its members.
func NewTensorSet(ts ...Tensor) TensorSet {
	var s TensorSet
	for _, t := range ts {
		s = s.With(t)
	}
	return s
}

// AllTensorSet is the set of all three operand tensors.
func AllTensorSet() TensorSet { return NewTensorSet(Weights, Inputs, Outputs) }

// With returns the set with t added.
func (s TensorSet) With(t Tensor) TensorSet { return s | 1<<t }

// Without returns the set with t removed.
func (s TensorSet) Without(t Tensor) TensorSet { return s &^ (1 << t) }

// Has reports whether t is in the set.
func (s TensorSet) Has(t Tensor) bool { return s&(1<<t) != 0 }

// Empty reports whether the set is empty.
func (s TensorSet) Empty() bool { return s == 0 }

// Len returns the number of members.
func (s TensorSet) Len() int {
	n := 0
	for _, t := range AllTensors() {
		if s.Has(t) {
			n++
		}
	}
	return n
}

// Tensors lists the members in canonical order.
func (s TensorSet) Tensors() []Tensor {
	var out []Tensor
	for _, t := range AllTensors() {
		if s.Has(t) {
			out = append(out, t)
		}
	}
	return out
}

// String formats the set as "{Weights,Outputs}".
func (s TensorSet) String() string {
	var names []string
	for _, t := range s.Tensors() {
		names = append(names, t.String())
	}
	return "{" + strings.Join(names, ",") + "}"
}
