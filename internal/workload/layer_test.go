package workload

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDimNamesRoundTrip(t *testing.T) {
	for _, d := range AllDims() {
		got, err := ParseDim(d.String())
		if err != nil {
			t.Fatalf("ParseDim(%q): %v", d.String(), err)
		}
		if got != d {
			t.Errorf("ParseDim(%q) = %v, want %v", d.String(), got, d)
		}
	}
	if _, err := ParseDim("Z"); err == nil {
		t.Error("ParseDim(Z) succeeded, want error")
	}
}

func TestTensorNamesRoundTrip(t *testing.T) {
	for _, tn := range AllTensors() {
		got, err := ParseTensor(tn.String())
		if err != nil {
			t.Fatalf("ParseTensor(%q): %v", tn.String(), err)
		}
		if got != tn {
			t.Errorf("ParseTensor(%q) = %v, want %v", tn.String(), got, tn)
		}
	}
	if _, err := ParseTensor("Psums"); err == nil {
		t.Error("ParseTensor(Psums) succeeded, want error")
	}
}

func TestRelevance(t *testing.T) {
	cases := []struct {
		tensor Tensor
		dims   []Dim
	}{
		{Weights, []Dim{DimK, DimC, DimR, DimS}},
		{Inputs, []Dim{DimN, DimC, DimP, DimQ, DimR, DimS}},
		{Outputs, []Dim{DimN, DimK, DimP, DimQ}},
	}
	for _, c := range cases {
		got := RelevantDims(c.tensor)
		if len(got) != len(c.dims) {
			t.Fatalf("%v relevant dims = %v, want %v", c.tensor, got, c.dims)
		}
		for i := range got {
			if got[i] != c.dims[i] {
				t.Errorf("%v relevant dims = %v, want %v", c.tensor, got, c.dims)
			}
		}
	}
}

func TestReductionDims(t *testing.T) {
	for _, d := range AllDims() {
		wantReduction := d == DimC || d == DimR || d == DimS
		if IsReduction(d) != wantReduction {
			t.Errorf("IsReduction(%v) = %v, want %v", d, IsReduction(d), wantReduction)
		}
		// A dimension is a reduction dimension iff it is irrelevant to outputs
		// but relevant to at least one read tensor.
		derived := !Relevant(Outputs, d) && (Relevant(Weights, d) || Relevant(Inputs, d))
		if IsReduction(d) != derived {
			t.Errorf("IsReduction(%v) inconsistent with relevance table", d)
		}
	}
}

func TestPointProduct(t *testing.T) {
	p := Ones()
	if p.Product() != 1 {
		t.Fatalf("Ones().Product() = %d", p.Product())
	}
	p[DimK] = 4
	p[DimC] = 3
	if p.Product() != 12 {
		t.Fatalf("Product = %d, want 12", p.Product())
	}
	q := Ones()
	q[DimK] = 2
	if p.Mul(q)[DimK] != 8 {
		t.Fatalf("Mul failed")
	}
	if p.Max(q)[DimK] != 4 {
		t.Fatalf("Max failed")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 1, 0}, {1, 1, 1}, {5, 3, 2}, {6, 3, 2}, {7, 3, 3}, {14, 32, 1},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLayerGeometry(t *testing.T) {
	l := NewConv("c", 1, 64, 3, 112, 112, 7, 7, 2, 3)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := l.InputH(); got != (112-1)*2+7 {
		t.Errorf("InputH = %d", got)
	}
	if l.MACs() != int64(64)*3*112*112*49 {
		t.Errorf("MACs = %d", l.MACs())
	}
	if l.TensorElems(Weights) != 64*3*49 {
		t.Errorf("weights = %d", l.TensorElems(Weights))
	}
	if l.TensorElems(Outputs) != 64*112*112 {
		t.Errorf("outputs = %d", l.TensorElems(Outputs))
	}
	if !l.IsStrided() {
		t.Error("IsStrided = false for stride-2 conv")
	}
	if l.IsPointwise() {
		t.Error("IsPointwise = true for 7x7 conv")
	}
}

func TestFCIsDegenerateConv(t *testing.T) {
	l := NewFC("fc", 4, 1000, 512)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.MACs() != 4*1000*512 {
		t.Errorf("MACs = %d", l.MACs())
	}
	if l.InputH() != 1 || l.InputW() != 1 {
		t.Errorf("FC input extent = %dx%d, want 1x1", l.InputH(), l.InputW())
	}
	if !l.IsPointwise() || l.IsStrided() {
		t.Error("FC should be pointwise and unstrided")
	}
}

func TestLayerValidateRejectsBadShapes(t *testing.T) {
	l := NewConv("bad", 1, 0, 3, 8, 8, 3, 3, 1, 1)
	if err := l.Validate(); err == nil {
		t.Error("Validate accepted K=0")
	}
	l = NewConv("", 1, 8, 3, 8, 8, 3, 3, 1, 1)
	if err := l.Validate(); err == nil {
		t.Error("Validate accepted empty name")
	}
	l = NewConv("neg", 1, 8, 3, 8, 8, 3, 3, 1, -1)
	if err := l.Validate(); err == nil {
		t.Error("Validate accepted negative padding")
	}
	fc := NewFC("fc", 1, 10, 10)
	fc.R = 3
	if err := fc.Validate(); err == nil {
		t.Error("Validate accepted FC with R=3")
	}
}

func TestInputRangeHalo(t *testing.T) {
	// A 3-wide output tile with a 3-wide filter at stride 1 touches 5 inputs.
	if got := InputRange(3, 3, 1, 1); got != 5 {
		t.Errorf("InputRange(3,3,1,1) = %d, want 5", got)
	}
	// Stride 2 removes overlap: 3 outputs, 3-wide filter -> 7 inputs.
	if got := InputRange(3, 3, 2, 1); got != 7 {
		t.Errorf("InputRange(3,3,2,1) = %d, want 7", got)
	}
	// Degenerate.
	if got := InputRange(1, 1, 1, 1); got != 1 {
		t.Errorf("InputRange(1,1,1,1) = %d, want 1", got)
	}
	if got := InputRange(0, 3, 1, 1); got != 0 {
		t.Errorf("InputRange(0,...) = %d, want 0", got)
	}
}

func TestTileElemsFullTileMatchesTensorElems(t *testing.T) {
	l := NewConv("c", 2, 32, 16, 28, 28, 3, 3, 1, 1)
	full := l.Bounds()
	for _, tensor := range AllTensors() {
		if got, want := l.TileElems(tensor, full), l.TensorElems(tensor); got != want {
			t.Errorf("TileElems(%v, full) = %d, want %d", tensor, got, want)
		}
	}
}

// Property: a tile never exceeds the full tensor, and growing any extent
// never shrinks a tile.
func TestTileElemsMonotone(t *testing.T) {
	l := NewConv("c", 2, 8, 8, 12, 12, 3, 3, 2, 1)
	f := func(a, b, c, d, e, g, h uint8) bool {
		ext := Ones()
		bounds := l.Bounds()
		raw := []int{int(a), int(b), int(c), int(d), int(e), int(g), int(h)}
		for i, d := range AllDims() {
			ext[d] = 1 + raw[i]%bounds[d]
		}
		for _, tensor := range AllTensors() {
			tile := l.TileElems(tensor, ext)
			if tile < 1 || tile > l.TensorElems(tensor) {
				return false
			}
			for _, d := range AllDims() {
				if ext[d] < bounds[d] {
					grown := ext
					grown[d]++
					if l.TileElems(tensor, grown) < tile {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWithBatch(t *testing.T) {
	l := NewConv("c", 1, 8, 8, 8, 8, 3, 3, 1, 1)
	l2 := l.WithBatch(16)
	if l2.N != 16 || l.N != 1 {
		t.Errorf("WithBatch mutated original or failed: %d %d", l.N, l2.N)
	}
}

func TestNetworkJSONRoundTrip(t *testing.T) {
	n := VGG16(1)
	var buf bytes.Buffer
	if err := n.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeNetworkJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != n.Name || len(got.Layers) != len(n.Layers) {
		t.Fatalf("round trip mismatch: %s %d layers", got.Name, len(got.Layers))
	}
	if got.MACs() != n.MACs() {
		t.Errorf("MACs changed in round trip: %d vs %d", got.MACs(), n.MACs())
	}
}

func TestDecodeNetworkJSONRejectsGarbage(t *testing.T) {
	if _, err := DecodeNetworkJSON(bytes.NewBufferString(`{"name":"x","layers":[{"name":"l","n":0}]}`)); err == nil {
		t.Error("decoder accepted invalid layer")
	}
	if _, err := DecodeNetworkJSON(bytes.NewBufferString(`{"bogus":1}`)); err == nil {
		t.Error("decoder accepted unknown fields")
	}
}
