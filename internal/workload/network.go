package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// Network is an ordered list of layers evaluated back to back. Layer order
// matters for layer-fusion studies: layer i+1 consumes layer i's outputs.
type Network struct {
	Name   string  `json:"name"`
	Layers []Layer `json:"layers"`
}

// Validate validates every layer.
func (n *Network) Validate() error {
	if n.Name == "" {
		return fmt.Errorf("workload: network has no name")
	}
	if len(n.Layers) == 0 {
		return fmt.Errorf("workload: network %s has no layers", n.Name)
	}
	seen := make(map[string]bool, len(n.Layers))
	for i := range n.Layers {
		l := &n.Layers[i]
		if err := l.Validate(); err != nil {
			return fmt.Errorf("workload: network %s layer %d: %w", n.Name, i, err)
		}
		if seen[l.Name] {
			return fmt.Errorf("workload: network %s: duplicate layer name %q", n.Name, l.Name)
		}
		seen[l.Name] = true
	}
	return nil
}

// MACs returns the total multiply-accumulate count across all layers.
func (n *Network) MACs() int64 {
	var total int64
	for i := range n.Layers {
		total += n.Layers[i].MACs()
	}
	return total
}

// WeightElems returns the total number of weight elements (the model size).
func (n *Network) WeightElems() int64 {
	var total int64
	for i := range n.Layers {
		total += n.Layers[i].TensorElems(Weights)
	}
	return total
}

// WithBatch returns a copy of the network with every layer's batch set to b.
func (n Network) WithBatch(b int) Network {
	layers := make([]Layer, len(n.Layers))
	for i, l := range n.Layers {
		layers[i] = l.WithBatch(b)
	}
	n.Layers = layers
	return n
}

// MaxActivationElems returns the largest single-layer activation tensor
// (input or output) in elements — a lower bound on the buffer needed to
// keep activations on chip between layers.
func (n *Network) MaxActivationElems() int64 {
	var max int64
	for i := range n.Layers {
		for _, t := range []Tensor{Inputs, Outputs} {
			if e := n.Layers[i].TensorElems(t); e > max {
				max = e
			}
		}
	}
	return max
}

// EncodeJSON writes the network as indented JSON.
func (n *Network) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(n)
}

// DecodeNetworkJSON reads a network from JSON and validates it.
func DecodeNetworkJSON(r io.Reader) (*Network, error) {
	var n Network
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&n); err != nil {
		return nil, fmt.Errorf("workload: decoding network: %w", err)
	}
	// Fill defaults for fields older specs may omit.
	for i := range n.Layers {
		l := &n.Layers[i]
		if l.DilationH == 0 {
			l.DilationH = 1
		}
		if l.DilationW == 0 {
			l.DilationW = 1
		}
		if l.StrideH == 0 {
			l.StrideH = 1
		}
		if l.StrideW == 0 {
			l.StrideW = 1
		}
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}
