package jobs

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"photoloop/internal/shard"
	"photoloop/internal/store"
	"photoloop/internal/sweep"
)

// remoteWorkerPool starts n shared-nothing workers against the manager's
// HTTP surface and returns their persisters plus a stop function that
// waits for clean exits.
func remoteWorkerPool(t *testing.T, url string, n int) ([]*store.RemotePersister, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, n)
	persisters := make([]*store.RemotePersister, n)
	for i := 0; i < n; i++ {
		rp := store.NewRemotePersister(url, nil)
		persisters[i] = rp
		go func() {
			done <- shard.Work(ctx, &shard.Client{Base: url}, rp, shard.WorkerOptions{Poll: 10 * time.Millisecond})
		}()
	}
	return persisters, func() {
		cancel()
		for i := 0; i < n; i++ {
			if err := <-done; err != nil {
				t.Errorf("remote worker: %v", err)
			}
		}
	}
}

// TestShardedRemoteNoSharedDir is the shared-nothing acceptance test at
// the jobs layer: workers hold no filesystem store at all — every result
// reaches the coordinator as an HTTP upload — and the assembled artifact
// is byte-identical to the single-process run at 1, 2 and 4 workers.
// The coordinator's store must stay single-segment: proof that no worker
// ever touched the directory.
func TestShardedRemoteNoSharedDir(t *testing.T) {
	plain := openManager(t, t.TempDir())
	_, want := runJob(t, plain, sweepJob())

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			m := openManager(t, t.TempDir())
			m.Shard = shard.NewCoordinator()
			m.ShardLocal = false
			srv := sweep.NewServer()
			Attach(srv, m)
			hs := httptest.NewServer(srv)
			defer hs.Close()

			persisters, stop := remoteWorkerPool(t, hs.URL, workers)
			st, got := runJob(t, m, sweepJob())
			stop()

			if !bytes.Equal(got, want) {
				t.Error("shared-nothing artifact differs from single-process artifact")
			}
			if st.Store == nil || st.Store.Misses != 0 {
				t.Errorf("coordinator recomputed searches: %+v", st.Store)
			}
			if seg := m.Store().Segments(); seg != 1 {
				t.Errorf("coordinator store spans %d segments; remote workers must not create segments", seg)
			}
			uploaded := 0
			for _, rp := range persisters {
				uploaded += rp.Stats().Uploaded
			}
			if uploaded == 0 {
				t.Error("no results travelled over the wire")
			}

			// Warm repeat with a fresh worker pool: the coordinator's
			// store already holds every search, so the new workers pull
			// the warm-key digest, serve their leases from coordinator
			// fetches, and upload nothing.
			persisters2, stop2 := remoteWorkerPool(t, hs.URL, workers)
			st2, err := m.Run(context.Background(), st.ID)
			if err != nil {
				t.Fatal(err)
			}
			stop2()
			if st2.Store == nil || st2.Store.Misses != 0 {
				t.Errorf("warm repeat recomputed searches: %+v", st2.Store)
			}
			rerun, err := m.Result(st2.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rerun, want) {
				t.Error("warm repeat artifact differs")
			}
			warm, uploaded2 := 0, 0
			for _, rp := range persisters2 {
				s := rp.Stats()
				warm += s.WarmHits
				uploaded2 += s.Uploaded
			}
			if uploaded2 != 0 {
				t.Errorf("warm repeat uploaded %d records, want 0 (every search already coordinator-side)", uploaded2)
			}
			if warm == 0 {
				t.Error("warm repeat served no warm hits from the coordinator")
			}
		})
	}
}

// TestShardedRemoteExploreNoSharedDir runs the multi-generation adaptive
// explore path shared-nothing: every generation's results cross the wire
// and the frontier must still match the single-process bytes.
func TestShardedRemoteExploreNoSharedDir(t *testing.T) {
	plain := openManager(t, t.TempDir())
	_, want := runJob(t, plain, adaptiveExploreJob())

	m := openManager(t, t.TempDir())
	m.Shard = shard.NewCoordinator()
	m.ShardLocal = false
	srv := sweep.NewServer()
	Attach(srv, m)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	_, stop := remoteWorkerPool(t, hs.URL, 2)
	st, got := runJob(t, m, adaptiveExploreJob())
	stop()

	if !bytes.Equal(got, want) {
		t.Error("shared-nothing adaptive frontier differs from single-process artifact")
	}
	if st.Store == nil || st.Store.Misses != 0 {
		t.Errorf("coordinator recomputed searches: %+v", st.Store)
	}
	if seg := m.Store().Segments(); seg != 1 {
		t.Errorf("coordinator store spans %d segments", seg)
	}
}
