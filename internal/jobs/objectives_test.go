package jobs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"photoloop/internal/explore"
	"photoloop/internal/sweep"
)

// objectiveExploreJob is the shared fixture for the objective round-trip
// table: one explore job per registered objective, everything else pinned.
func objectiveExploreJob(obj string) Spec {
	sp := exploreJob()
	sp.Explore.Name = "objective-" + obj
	sp.Explore.Objectives = []string{obj}
	return sp
}

// TestObjectivesRoundTrip drives every registered explore objective
// through the three surfaces that must agree on it: the local engine vs
// POST /v1/explore (byte-identical frontier JSON), the frontier CSV (an
// objective_<name> column), and the jobs store codec (spec read-back is
// lossless, content addressing is stable, and the job artifact matches
// the local run byte-for-byte once the per-attempt cache counters are
// zeroed, as Run documents).
func TestObjectivesRoundTrip(t *testing.T) {
	objs := explore.Objectives()
	if len(objs) < 6 {
		t.Fatalf("explore.Objectives() = %v, expected at least the six documented objectives", objs)
	}
	dir := t.TempDir()
	m := openManager(t, dir)

	for _, obj := range objs {
		t.Run(obj, func(t *testing.T) {
			sp := objectiveExploreJob(obj)

			// Each objective gets its own server: the shared process-wide
			// search cache would otherwise warm across subtests and skew
			// the served cache counters away from the cold local run.
			srv := sweep.NewServer()
			explore.Attach(srv)
			ts := httptest.NewServer(srv)
			defer ts.Close()

			f, err := explore.Run(*sp.Explore, explore.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(f.Objectives) != 1 || f.Objectives[0] != obj {
				t.Fatalf("frontier canonicalized %q to %v", obj, f.Objectives)
			}
			var local bytes.Buffer
			if err := f.WriteJSON(&local); err != nil {
				t.Fatal(err)
			}

			// HTTP leg: the served frontier is the local frontier.
			body, err := json.Marshal(sp.Explore)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(ts.URL+"/v1/explore", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var served bytes.Buffer
			served.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST /v1/explore: status %d: %s", resp.StatusCode, served.String())
			}
			if !bytes.Equal(served.Bytes(), local.Bytes()) {
				t.Errorf("served frontier differs from local run for objective %q", obj)
			}

			// CSV leg: one objective_<name> column, and the accuracy
			// objective additionally populates the effective_bits cells.
			var csvBuf bytes.Buffer
			if err := f.WriteCSV(&csvBuf); err != nil {
				t.Fatal(err)
			}
			lines := strings.SplitN(csvBuf.String(), "\n", 3)
			if !strings.Contains(lines[0], "objective_"+obj) {
				t.Errorf("frontier CSV header lacks objective_%s: %s", obj, lines[0])
			}
			if !strings.Contains(lines[0], "effective_bits") {
				t.Errorf("frontier CSV header lacks effective_bits: %s", lines[0])
			}

			// Jobs codec leg: submit, read back, resubmit — the codec is
			// lossless and the content address is a pure function of the
			// canonical spec.
			st, err := m.Submit(sp)
			if err != nil {
				t.Fatal(err)
			}
			back, err := m.Spec(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if back.Explore == nil || len(back.Explore.Objectives) != 1 || back.Explore.Objectives[0] != obj {
				t.Fatalf("spec read-back lost the objective: %+v", back.Explore)
			}
			st2, err := m.Submit(*back)
			if err != nil {
				t.Fatal(err)
			}
			if st2.ID != st.ID {
				t.Fatalf("resubmitted read-back got a new ID: %s vs %s", st2.ID, st.ID)
			}

			if _, err := m.Run(t.Context(), st.ID); err != nil {
				t.Fatal(err)
			}
			artifact, err := m.Result(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			f.CacheHits, f.CacheMisses = 0, 0
			local.Reset()
			if err := f.WriteJSON(&local); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(artifact, local.Bytes()) {
				t.Errorf("job artifact differs from local run for objective %q:\n--- artifact ---\n%s--- local ---\n%s",
					obj, artifact, local.String())
			}
		})
	}
}

// TestStudyObjectivesRoundTrip covers the study-side vocabulary: every
// registered study objective survives a study run, the JSON round-trip,
// and the CSV rendering.
func TestStudyObjectivesRoundTrip(t *testing.T) {
	objs := sweep.StudyObjectives()
	sp := sweep.StudySpec{
		Name:          "objective-study",
		Presets:       []string{"albireo"},
		Workloads:     []string{"alexnet"},
		Objectives:    objs,
		Budget:        40,
		Seed:          1,
		SearchWorkers: 1,
	}
	res, err := sweep.RunStudy(sp, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := range res.Rows {
		seen[res.Rows[i].Objective] = true
	}
	for _, obj := range objs {
		if !seen[obj] {
			t.Errorf("study rows missing objective %q (got %v)", obj, seen)
		}
	}

	var jsonBuf bytes.Buffer
	if err := res.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var round sweep.StudyResult
	if err := json.Unmarshal(jsonBuf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := round.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonBuf.Bytes(), again.Bytes()) {
		t.Errorf("study JSON does not round-trip:\n first %s\nsecond %s", jsonBuf.String(), again.String())
	}

	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	for _, obj := range objs {
		if !strings.Contains(csvBuf.String(), ","+obj+",") {
			t.Errorf("study CSV has no row for objective %q:\n%s", obj, csvBuf.String())
		}
	}
}
