package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"photoloop/internal/shard"
)

// shardProgressInterval is how often a waiting coordinator refreshes
// Status.Shards while workers chew through a generation.
const shardProgressInterval = 150 * time.Millisecond

// shardRun is one job's fan-out session on the manager's coordinator:
// publish, offer generations, wait, refresh. Workers only warm the shared
// store — the artifact is still assembled by the unchanged local code
// path afterwards, which is what makes sharded output byte-identical to
// single-process output.
type shardRun struct {
	m      *Manager
	ctx    context.Context
	st     *Status
	gen    int
	cancel context.CancelFunc // stops the local worker, when one runs
	done   chan struct{}      // closed when the local worker exits
}

// startShard publishes the job's inner spec on the coordinator and, when
// ShardLocal, starts an in-process worker loop so a sharded job completes
// even if no worker process ever attaches.
func (m *Manager) startShard(ctx context.Context, st *Status, kind string, inner any) (*shardRun, error) {
	spec, err := json.Marshal(inner)
	if err != nil {
		return nil, fmt.Errorf("jobs: encoding %s spec for sharding: %w", kind, err)
	}
	if err := m.Shard.Publish(st.ID, kind, spec); err != nil {
		return nil, err
	}
	sr := &shardRun{m: m, ctx: ctx, st: st}
	if m.ShardLocal {
		wctx, cancel := context.WithCancel(ctx)
		sr.cancel = cancel
		sr.done = make(chan struct{})
		go func() {
			defer close(sr.done)
			// SearchWorkers stays 0: the lease's spec must be evaluated
			// with exactly the cache keys the assembly run will look up.
			shard.Work(wctx, shard.Local{C: m.Shard}, shard.SharedDir{S: m.store}, shard.WorkerOptions{
				Job:  st.ID,
				Poll: 25 * time.Millisecond,
			})
		}()
	}
	return sr, nil
}

// offer posts one generation of task indices, waits until workers finish
// it (updating Status.Shards as ranges complete), then refreshes the
// store view so the coordinating process sees every search the generation
// computed. Its signature is explore.Options.PreEvaluate.
func (sr *shardRun) offer(tasks []int64) error {
	m, id := sr.m, sr.st.ID
	done, err := m.Shard.Offer(id, sr.gen, tasks)
	if err != nil {
		return err
	}
	sr.gen++
	t := time.NewTicker(shardProgressInterval)
	defer t.Stop()
wait:
	for {
		select {
		case <-done:
			break wait
		case <-sr.ctx.Done():
			return sr.ctx.Err()
		case <-t.C:
			sr.publishProgress()
		}
	}
	sr.publishProgress()
	if err := m.Shard.Err(id); err != nil {
		return err
	}
	return m.store.Refresh()
}

// publishProgress mirrors the coordinator's lease accounting into the
// job's persisted status.
func (sr *shardRun) publishProgress() {
	if p, ok := sr.m.Shard.Progress(sr.st.ID); ok {
		sr.st.Shards = &p
		sr.m.writeState(sr.st)
	}
}

// close retires the job from the coordinator (remote workers stop being
// offered it) and stops the local worker.
func (sr *shardRun) close() {
	sr.m.Shard.Retire(sr.st.ID)
	if sr.cancel != nil {
		sr.cancel()
		<-sr.done
	}
}

// taskIndices enumerates [0, n).
func taskIndices(n int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}
