// Package jobs runs sweeps and explorations as durable, resumable jobs
// over a persistent result store. A job is a submitted sweep or explore
// spec, content-addressed by its canonical JSON (equal specs are one
// job); running it evaluates the spec with a search cache write-through
// backed by the directory's store (package store), so every completed
// layer search is checkpointed the moment it finishes.
//
// Resumption is the store: a killed job lost nothing but the searches in
// flight, and resuming simply re-runs the spec — every search any prior
// attempt completed is served from disk bit-identically, so the resumed
// job's final artifact is byte-identical to an uninterrupted run's. The
// streamed point log and the result artifact are rewritten on each
// attempt; only the store is append-only.
//
// Layout under the store directory:
//
//	photoloop-store.log          the shared result store (package store;
//	photoloop-store.NNN.log      one segment per concurrent writer)
//	jobs/<id>/spec.json          the submitted spec
//	jobs/<id>/state.json         live status (atomically replaced)
//	jobs/<id>/points.ndjson      one JSON point per line, completion order
//	jobs/<id>/result.json        final artifact (atomically written)
//
// A Manager with a Shard coordinator additionally fans each run's task
// grid out to worker processes (package shard) that warm the same store;
// see run.go and shard.go in this package.
//
// `photoloop jobs` drives a Manager from the command line and Attach
// serves the same engine over HTTP (POST /v1/jobs and friends).
package jobs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"photoloop/internal/explore"
	"photoloop/internal/mapper"
	"photoloop/internal/shard"
	"photoloop/internal/store"
	"photoloop/internal/sweep"
)

// Spec is a job document: exactly one of Sweep or Explore.
type Spec struct {
	// Sweep declares a grid sweep job (see sweep.Spec).
	Sweep *sweep.Spec `json:"sweep,omitempty"`
	// Explore declares a Pareto-frontier exploration job (see
	// explore.Spec).
	Explore *explore.Spec `json:"explore,omitempty"`
}

// Job states reported in Status.State.
const (
	// StatePending: submitted, never run.
	StatePending = "pending"
	// StateRunning: a runner in this process is evaluating the job.
	StateRunning = "running"
	// StateInterrupted: the state file says running but no live runner
	// exists — the owning process died. Resume re-runs it from the store.
	StateInterrupted = "interrupted"
	// StateDone: the result artifact is written.
	StateDone = "done"
	// StateFailed: the last attempt errored (Status.Error says why).
	StateFailed = "failed"
)

// Status is a job's current state — what GET /v1/jobs/{id} and
// `photoloop jobs status` report, persisted as state.json.
type Status struct {
	// ID is the job's content address (a hash of the canonical spec).
	ID string `json:"id"`
	// Kind is "sweep" or "explore".
	Kind string `json:"kind"`
	// Name echoes the spec's label.
	Name string `json:"name,omitempty"`
	// State is one of the State* constants.
	State string `json:"state"`
	// Done and Total count evaluated points of the current (or last)
	// attempt. Total is 0 until the run's first progress report.
	Done  int `json:"done"`
	Total int `json:"total,omitempty"`
	// Resumes counts re-runs after the first attempt.
	Resumes int `json:"resumes,omitempty"`
	// Error is the last attempt's failure (StateFailed only).
	Error string `json:"error,omitempty"`
	// Store breaks down the last completed attempt's search traffic by
	// cache tier. A re-run of a finished job against a warm store shows
	// Misses == 0: every search was served, none recomputed.
	Store *mapper.TierStats `json:"store,omitempty"`
	// Shards reports a sharded run's lease progress (only for jobs run
	// with a coordinator); the last generation's counts persist after
	// the run.
	Shards *shard.Progress `json:"shards,omitempty"`
}

// Manager owns one store directory: the shared result store plus the job
// records under jobs/. It is safe for concurrent use; each job runs at
// most once per process at a time.
type Manager struct {
	dir   string
	store *store.Store
	// Workers caps each job's point-level pool (0 = engine default).
	Workers int
	// Shard, when set, fans shardable jobs out across worker processes
	// through a range-lease coordinator: workers warm the shared store,
	// and the artifact is then assembled by the unchanged local path
	// (see run.go). Warm-start sweeps cannot shard and run locally.
	Shard *shard.Coordinator
	// ShardLocal makes the coordinating process work its own leases (an
	// in-process worker loop), so a sharded job completes even when no
	// worker process ever attaches. Open sets it; tests and benchmarks
	// clear it to measure pure remote execution.
	ShardLocal bool
	// Progress, when set, mirrors each running job's progress reports
	// (done, total) — the CLI renders them; calls are serialized per job.
	Progress func(done, total int)

	mu      sync.Mutex
	running map[string]chan struct{} // job id -> closed when the run ends
}

// Open opens (creating if needed) the store directory and its job root.
func Open(dir string) (*Manager, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o777); err != nil {
		st.Close()
		return nil, fmt.Errorf("jobs: %w", err)
	}
	return &Manager{dir: dir, store: st, ShardLocal: true, running: make(map[string]chan struct{})}, nil
}

// Close closes the underlying store. Jobs still running keep evaluating
// but their write-throughs will fail (counted, never fatal); close after
// runs finish.
func (m *Manager) Close() error { return m.store.Close() }

// Store returns the manager's shared result store, for wiring the same
// persistence into sibling engines (the serve command backs the HTTP
// server's search cache with it).
func (m *Manager) Store() *store.Store { return m.store }

// kind classifies and validates a spec.
func (sp *Spec) kind() (kind, name string, err error) {
	switch {
	case sp.Sweep != nil && sp.Explore != nil:
		return "", "", fmt.Errorf("jobs: spec sets both sweep and explore")
	case sp.Sweep != nil:
		return "sweep", sp.Sweep.Name, nil
	case sp.Explore != nil:
		return "explore", sp.Explore.Name, nil
	}
	return "", "", fmt.Errorf("jobs: spec sets neither sweep nor explore")
}

// id content-addresses a spec: the FNV-64a of its canonical JSON (struct
// field order, sorted map keys). Equal specs get equal IDs, which is what
// makes submission idempotent and resumption a re-submit.
func (sp *Spec) id() (string, error) {
	buf, err := json.Marshal(sp)
	if err != nil {
		return "", fmt.Errorf("jobs: encoding spec: %w", err)
	}
	h := fnv.New64a()
	h.Write(buf)
	return fmt.Sprintf("j%016x", h.Sum64()), nil
}

// jobDir returns a job's record directory.
func (m *Manager) jobDir(id string) string { return filepath.Join(m.dir, "jobs", id) }

func (m *Manager) specPath(id string) string   { return filepath.Join(m.jobDir(id), "spec.json") }
func (m *Manager) statePath(id string) string  { return filepath.Join(m.jobDir(id), "state.json") }
func (m *Manager) pointsPath(id string) string { return filepath.Join(m.jobDir(id), "points.ndjson") }
func (m *Manager) resultPath(id string) string { return filepath.Join(m.jobDir(id), "result.json") }

// Submit registers a spec as a job and returns its status. Submission is
// idempotent: a spec already submitted (same content address) returns the
// existing job unchanged.
func (m *Manager) Submit(sp Spec) (*Status, error) {
	kind, name, err := sp.kind()
	if err != nil {
		return nil, err
	}
	id, err := sp.id()
	if err != nil {
		return nil, err
	}
	if st, err := m.Status(id); err == nil {
		return st, nil
	}
	dir := m.jobDir(id)
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	specBuf, err := json.MarshalIndent(&sp, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("jobs: encoding spec: %w", err)
	}
	if err := writeFileAtomic(m.specPath(id), append(specBuf, '\n')); err != nil {
		return nil, err
	}
	st := &Status{ID: id, Kind: kind, Name: name, State: StatePending}
	if err := m.writeState(st); err != nil {
		return nil, err
	}
	return st, nil
}

// Spec reads a submitted job's spec back.
func (m *Manager) Spec(id string) (*Spec, error) {
	f, err := os.Open(m.specPath(id))
	if err != nil {
		return nil, fmt.Errorf("jobs: job %s: %w", id, err)
	}
	defer f.Close()
	var sp Spec
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("jobs: job %s: decoding spec: %w", id, err)
	}
	return &sp, nil
}

// Status reads a job's state. A state file claiming "running" without a
// live runner in this process is reported as interrupted — the owning
// process died and the job is resumable.
func (m *Manager) Status(id string) (*Status, error) {
	buf, err := os.ReadFile(m.statePath(id))
	if err != nil {
		return nil, fmt.Errorf("jobs: job %s: %w", id, err)
	}
	var st Status
	if err := json.Unmarshal(buf, &st); err != nil {
		return nil, fmt.Errorf("jobs: job %s: decoding state: %w", id, err)
	}
	if st.State == StateRunning && m.runningChan(id) == nil {
		st.State = StateInterrupted
	}
	return &st, nil
}

// List returns every job's status, sorted by ID.
func (m *Manager) List() ([]*Status, error) {
	entries, err := os.ReadDir(filepath.Join(m.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	var out []*Status
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		st, err := m.Status(e.Name())
		if err != nil {
			continue // half-created record; skip rather than fail the listing
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Result returns a finished job's artifact bytes (the same document
// `photoloop sweep`/`photoloop explore` would have written, with the
// run-dependent cache counters zeroed — see run.go).
func (m *Manager) Result(id string) ([]byte, error) {
	buf, err := os.ReadFile(m.resultPath(id))
	if err != nil {
		return nil, fmt.Errorf("jobs: job %s has no result (state: see status): %w", id, err)
	}
	return buf, nil
}

// runningChan returns the done channel of a live in-process run, or nil.
func (m *Manager) runningChan(id string) chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running[id]
}

// writeState persists a status as the job's state.json, atomically.
func (m *Manager) writeState(st *Status) error {
	buf, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: encoding state: %w", err)
	}
	return writeFileAtomic(m.statePath(st.ID), append(buf, '\n'))
}

// writeFileAtomic replaces path via a same-directory temp file and
// rename, so readers never observe a torn document.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o666); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return nil
}
