package jobs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"photoloop/internal/shard"
	"photoloop/internal/sweep"
)

// maxRequestBytes bounds POST /v1/jobs bodies (job specs are sweep or
// explore specs — small documents).
const maxRequestBytes = 8 << 20

// streamPollInterval is how often the stream endpoint re-reads a running
// job's point log after catching up to its tail.
const streamPollInterval = 100 * time.Millisecond

// Attach mounts the job API on a sweep server, backed by the manager's
// store directory:
//
//	POST /v1/jobs              submit a Spec; starts it asynchronously (202 + Status)
//	GET  /v1/jobs              list jobs
//	GET  /v1/jobs/{id}         one job's Status
//	GET  /v1/jobs/{id}/result  the finished artifact (404 until done)
//	GET  /v1/jobs/{id}/stream  NDJSON of points as they complete (tails a running job)
//
// Submitted jobs queue on the server's heavy-run admission alongside
// sweeps and explorations, so async jobs and synchronous requests never
// oversubscribe the machine together. Submission is idempotent: posting a
// spec already known (same content address) reports the existing job.
func Attach(s *sweep.Server, m *Manager) {
	// A sharding manager also speaks the worker protocol: lease,
	// heartbeat, complete, fail, and per-job shard progress (package
	// shard documents the endpoints), plus the shared-nothing result
	// exchange — upload, warm-key digest, single-result fetch — that
	// remote workers without a shared store directory talk through.
	// Jobs clients are unaffected.
	if m.Shard != nil {
		shard.AttachHTTP(s.Mount, m.Shard)
		shard.AttachResults(s.Mount, m.store)
	}
	s.Mount("POST /v1/jobs", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(s, m, w, r)
	}))
	s.Mount("GET /v1/jobs", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		list, err := m.List()
		if err != nil {
			sweep.WriteHTTPError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, list)
	}))
	s.Mount("GET /v1/jobs/{id}", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Status(r.PathValue("id"))
		if err != nil {
			sweep.WriteHTTPError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, st)
	}))
	s.Mount("GET /v1/jobs/{id}/result", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		buf, err := m.Result(r.PathValue("id"))
		if err != nil {
			sweep.WriteHTTPError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf)
	}))
	s.Mount("GET /v1/jobs/{id}/stream", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handleStream(m, w, r)
	}))
}

func handleSubmit(s *sweep.Server, m *Manager, w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		sweep.WriteHTTPError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	st, err := m.Submit(sp)
	if err != nil {
		sweep.WriteHTTPError(w, http.StatusUnprocessableEntity, err)
		return
	}
	// One runner per job: if it is already running (or a concurrent
	// submit just started it), report it rather than double-running.
	if m.runningChan(st.ID) == nil && st.State != StateDone {
		go func(id string) {
			// The job outlives the submit request, so admission waits on
			// the background context, not the request's.
			release, err := s.AdmitHeavy(context.Background())
			if err != nil {
				return
			}
			defer release()
			if _, err := m.Run(context.Background(), id); err != nil {
				log.Printf("jobs: job %s: %v", id, err)
			}
		}(st.ID)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	if err := sweep.EncodeResponseJSON(w, st); err != nil {
		log.Printf("jobs: writing submit response: %v", err)
	}
}

// handleStream tails a job's point log as NDJSON: everything already
// evaluated immediately, then new points as the running job completes
// them, ending when the job stops running. A finished job streams its
// whole log and closes. Slow readers never block the job — the log is a
// file, not a channel.
func handleStream(m *Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := m.Status(id); err != nil {
		sweep.WriteHTTPError(w, http.StatusNotFound, err)
		return
	}
	f, err := os.Open(m.pointsPath(id))
	if err != nil && !os.IsNotExist(err) {
		sweep.WriteHTTPError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var off int64
	for {
		running := m.runningChan(id) != nil
		if f == nil {
			// The log appears when the run starts; keep polling while the
			// job is live.
			if f, err = os.Open(m.pointsPath(id)); err != nil {
				f = nil
			}
		}
		if f != nil {
			n, err := copyLines(w, f, off)
			off += n
			if n > 0 && flusher != nil {
				flusher.Flush()
			}
			if err != nil {
				break // client went away
			}
		}
		if !running {
			break
		}
		select {
		case <-r.Context().Done():
			f.Close()
			return
		case <-time.After(streamPollInterval):
		}
	}
	if f != nil {
		f.Close()
	}
}

// copyLines copies whole lines from the log starting at off, returning
// how many bytes were consumed. A trailing partial line (a point mid-
// write) is left for the next poll.
func copyLines(w io.Writer, f *os.File, off int64) (int64, error) {
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return 0, err
	}
	var n int64
	br := bufio.NewReader(f)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return n, nil // EOF or partial tail: wait for more
		}
		if _, err := w.Write(line); err != nil {
			return n, err
		}
		n += int64(len(line))
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := sweep.EncodeResponseJSON(w, v); err != nil {
		log.Printf("jobs: writing JSON response: %v", err)
	}
}
