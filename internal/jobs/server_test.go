package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"photoloop/internal/sweep"
)

func newJobServer(t *testing.T) (*sweep.Server, *Manager) {
	t.Helper()
	srv := sweep.NewServer()
	m := openManager(t, t.TempDir())
	Attach(srv, m)
	return srv, m
}

func postJob(t *testing.T, srv *sweep.Server, sp Spec) *Status {
	t.Helper()
	body, err := json.Marshal(&sp)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs status %d: %s", rec.Code, rec.Body.String())
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return &st
}

// waitDone polls the status endpoint until the async run finishes.
func waitDone(t *testing.T, srv *sweep.Server, id string) *Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		req := httptest.NewRequest("GET", "/v1/jobs/"+id, nil)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s status %d: %s", id, rec.Code, rec.Body.String())
		}
		var st Status
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateDone:
			return &st
		case StateFailed:
			t.Fatalf("job failed: %s", st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return nil
}

func TestJobHTTPLifecycle(t *testing.T) {
	srv, _ := newJobServer(t)
	st := postJob(t, srv, sweepJob())
	if st.ID == "" {
		t.Fatalf("submit returned %+v", st)
	}
	done := waitDone(t, srv, st.ID)
	if done.Store == nil || done.Store.Misses == 0 {
		t.Errorf("first async run stats = %+v", done.Store)
	}

	// Result artifact.
	req := httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/result", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("result status %d", rec.Code)
	}
	var res sweep.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("result does not parse: %v", err)
	}
	if len(res.Points) != 2 {
		t.Errorf("result has %d points", len(res.Points))
	}

	// Stream: the finished job replays its whole point log as NDJSON.
	req = httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/stream", nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	lines := 0
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var p sweep.Point
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("stream line does not parse: %v", err)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("stream produced %d lines, want 2", lines)
	}

	// Listing includes the job.
	req = httptest.NewRequest("GET", "/v1/jobs", nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var list []Status
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("list = %+v", list)
	}

	// Resubmitting the same spec reports the existing (done) job and
	// does not re-run it.
	again := postJob(t, srv, sweepJob())
	if again.ID != st.ID || again.State != StateDone {
		t.Errorf("resubmit = %+v", again)
	}
}

func TestJobHTTPErrors(t *testing.T) {
	srv, _ := newJobServer(t)
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/v1/jobs", "{nope", http.StatusBadRequest},
		{"POST", "/v1/jobs", `{"bogus": 1}`, http.StatusBadRequest},
		{"POST", "/v1/jobs", `{}`, http.StatusUnprocessableEntity},
		{"GET", "/v1/jobs/jdeadbeef", "", http.StatusNotFound},
		{"GET", "/v1/jobs/jdeadbeef/result", "", http.StatusNotFound},
		{"GET", "/v1/jobs/jdeadbeef/stream", "", http.StatusNotFound},
	} {
		var body *strings.Reader
		if tc.body != "" {
			body = strings.NewReader(tc.body)
		} else {
			body = strings.NewReader("")
		}
		req := httptest.NewRequest(tc.method, tc.path, body)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("%s %s -> %d, want %d: %s", tc.method, tc.path, rec.Code, tc.want, rec.Body.String())
		}
	}
}
