package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"photoloop/internal/explore"
	"photoloop/internal/sweep"
	"photoloop/internal/workload"
)

// tinyNet keeps job runs fast while exercising conv and FC shapes.
func tinyNet() *workload.Network {
	return &workload.Network{
		Name: "tiny",
		Layers: []workload.Layer{
			workload.NewConv("conv1", 1, 6, 8, 8, 8, 3, 3, 1, 1),
			workload.NewFC("fc", 1, 12, 32),
		},
	}
}

// sweepJob is a small two-variant sweep with Seed and SearchWorkers
// pinned, so results are reproducible across attempts and machines.
func sweepJob() Spec {
	return Spec{Sweep: &sweep.Spec{
		Name:          "job-sweep",
		Base:          sweep.Base{Albireo: &sweep.AlbireoBase{}},
		Axes:          []sweep.Axis{{Param: "output_lanes", Values: []any{3, 9}}},
		Workloads:     []sweep.Workload{{Inline: tinyNet()}},
		Budget:        60,
		Seed:          1,
		SearchWorkers: 2,
	}}
}

func exploreJob() Spec {
	return Spec{Explore: &explore.Spec{
		Name:          "job-explore",
		Base:          sweep.Base{Albireo: &sweep.AlbireoBase{}},
		Axes:          []explore.Axis{{Param: "output_lanes", Values: []any{3, 9}}},
		Workload:      sweep.Workload{Inline: tinyNet()},
		Strategy:      explore.StrategyGrid,
		MapperBudget:  60,
		Seed:          1,
		SearchWorkers: 2,
	}}
}

func openManager(t *testing.T, dir string) *Manager {
	t.Helper()
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestSweepJobLifecycle(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir)
	st, err := m.Submit(sweepJob())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StatePending || st.Kind != "sweep" || st.Name != "job-sweep" {
		t.Fatalf("submitted status = %+v", st)
	}
	if _, err := m.Result(st.ID); err == nil {
		t.Fatal("pending job has a result")
	}

	st, err = m.Run(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if st.Done != 2 || st.Total != 2 {
		t.Errorf("done/total = %d/%d, want 2/2", st.Done, st.Total)
	}
	if st.Store == nil || st.Store.Misses == 0 {
		t.Errorf("first run should compute searches: store = %+v", st.Store)
	}

	buf, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var res sweep.Result
	if err := json.Unmarshal(buf, &res); err != nil {
		t.Fatalf("result artifact does not parse: %v", err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("artifact has %d points", len(res.Points))
	}
	for i := range res.Points {
		if res.Points[i].Err != "" || res.Points[i].TotalPJ <= 0 {
			t.Errorf("point %d = %+v", i, res.Points[i])
		}
	}
	if res.CacheHits != 0 || res.CacheMisses != 0 {
		t.Errorf("artifact cache counters not zeroed: %d/%d", res.CacheHits, res.CacheMisses)
	}

	// The streamed point log holds every point as one JSON line.
	pf, err := os.Open(filepath.Join(dir, "jobs", st.ID, "points.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	lines := 0
	sc := bufio.NewScanner(pf)
	for sc.Scan() {
		var p sweep.Point
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("point line %d does not parse: %v", lines, err)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("point log has %d lines, want 2", lines)
	}
}

// TestWarmRepeatRunsZeroSearches is the store-equivalence acceptance
// check: re-running a finished job against the warm store must perform
// zero mapper searches — every layer search is a store or memory hit —
// and must rewrite a byte-identical artifact.
func TestWarmRepeatRunsZeroSearches(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir)
	st, err := m.Submit(sweepJob())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	first, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}

	// A fresh manager (fresh process, as far as caches are concerned).
	m.Close()
	m2 := openManager(t, dir)
	st2, err := m2.Run(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Resumes != 1 {
		t.Errorf("resumes = %d, want 1", st2.Resumes)
	}
	if st2.Store == nil {
		t.Fatal("no tier stats on status")
	}
	if st2.Store.Misses != 0 {
		t.Errorf("warm repeat computed %d searches, want 0 (stats %+v)", st2.Store.Misses, st2.Store)
	}
	if st2.Store.DiskHits == 0 {
		t.Errorf("warm repeat served nothing from the store: %+v", st2.Store)
	}
	second, err := m2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("warm repeat artifact differs from the first run's")
	}
}

func TestSubmitIdempotentAndValidated(t *testing.T) {
	m := openManager(t, t.TempDir())
	a, err := m.Submit(sweepJob())
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(sweepJob())
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Errorf("equal specs got different IDs: %s vs %s", a.ID, b.ID)
	}
	c, err := m.Submit(exploreJob())
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == a.ID {
		t.Error("different specs share an ID")
	}
	if _, err := m.Submit(Spec{}); err == nil {
		t.Error("empty spec accepted")
	}
	two := sweepJob()
	two.Explore = exploreJob().Explore
	if _, err := m.Submit(two); err == nil {
		t.Error("two-kind spec accepted")
	}
}

func TestExploreJobWarmRepeat(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir)
	st, err := m.Submit(exploreJob())
	if err != nil {
		t.Fatal(err)
	}
	st, err = m.Run(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Kind != "explore" {
		t.Fatalf("status = %+v", st)
	}
	first, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var f explore.Frontier
	if err := json.Unmarshal(first, &f); err != nil {
		t.Fatalf("frontier artifact does not parse: %v", err)
	}
	if len(f.Points) == 0 || f.CacheHits != 0 || f.CacheMisses != 0 {
		t.Errorf("frontier = %d points, counters %d/%d", len(f.Points), f.CacheHits, f.CacheMisses)
	}

	m.Close()
	m2 := openManager(t, dir)
	st2, err := m2.Run(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Store.Misses != 0 {
		t.Errorf("warm explore repeat computed %d searches", st2.Store.Misses)
	}
	second, err := m2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("warm explore repeat artifact differs")
	}
}

func TestInterruptedStateAndResume(t *testing.T) {
	m := openManager(t, t.TempDir())
	st, err := m.Submit(sweepJob())
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: the state file says running, no live runner.
	st.State = StateRunning
	if err := m.writeState(st); err != nil {
		t.Fatal(err)
	}
	got, err := m.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateInterrupted {
		t.Fatalf("state = %s, want %s", got.State, StateInterrupted)
	}
	// Resume runs it to completion.
	got, err = m.Run(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || got.Resumes != 1 {
		t.Fatalf("resumed status = %+v", got)
	}
	list, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID || list[0].State != StateDone {
		t.Fatalf("list = %+v", list)
	}
}
