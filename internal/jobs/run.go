package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"photoloop/internal/explore"
	"photoloop/internal/mapper"
	"photoloop/internal/shard"
	"photoloop/internal/sweep"
)

// pointDelayEnv, when set to a time.Duration, sleeps after each streamed
// point. It exists for the crash-recovery tests, which need a run slow
// enough to SIGKILL mid-flight deterministically; it is not part of the
// public surface.
const pointDelayEnv = "PHOTOLOOP_JOB_POINT_DELAY"

func pointDelay() time.Duration {
	v := os.Getenv(pointDelayEnv)
	if v == "" {
		return 0
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return 0
	}
	return d
}

// Run evaluates a submitted job synchronously: every layer search is
// written through to the store as it completes, points stream to
// points.ndjson, and the final artifact lands in result.json. Running a
// job again — after a crash, a failure, or even completion — re-evaluates
// the spec against the warm store and rewrites byte-identical outputs;
// only searches no prior attempt finished are recomputed. Context cancels
// between points.
//
// The artifact's cache counters (cache_hits/cache_misses) are zeroed:
// they describe the attempt, not the result, and differ between a clean
// and a resumed run of the same job. The per-tier traffic of the attempt
// is reported in Status.Store instead — a warm re-run shows Misses == 0,
// meaning not one mapper search ran.
func (m *Manager) Run(ctx context.Context, id string) (*Status, error) {
	m.mu.Lock()
	if _, ok := m.running[id]; ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("jobs: job %s is already running", id)
	}
	done := make(chan struct{})
	m.running[id] = done
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.running, id)
		m.mu.Unlock()
		close(done)
	}()

	sp, err := m.Spec(id)
	if err != nil {
		return nil, err
	}
	st, err := m.Status(id)
	if err != nil {
		return nil, err
	}
	if st.State != StatePending {
		st.Resumes++
	}
	st.State = StateRunning
	st.Done, st.Total, st.Error, st.Store, st.Shards = 0, 0, "", nil, nil
	if err := m.writeState(st); err != nil {
		return nil, err
	}

	fail := func(runErr error) (*Status, error) {
		st.State = StateFailed
		st.Error = runErr.Error()
		if werr := m.writeState(st); werr != nil {
			return st, fmt.Errorf("%w (and writing state: %v)", runErr, werr)
		}
		return st, runErr
	}

	// Each attempt gets a fresh memory tier over the shared store: the
	// attempt's TierStats then describe exactly this run.
	cache := mapper.NewCache()
	cache.SetPersister(m.store)

	// The point log is rewritten per attempt (completion order may differ
	// between attempts; the store, not this log, is the checkpoint).
	pf, err := os.Create(m.pointsPath(id))
	if err != nil {
		return fail(fmt.Errorf("jobs: %w", err))
	}
	defer pf.Close()
	var writeErr error
	delay := pointDelay()
	onPoint := func(p *sweep.Point) {
		if writeErr == nil {
			enc := json.NewEncoder(pf)
			writeErr = enc.Encode(p)
		}
		if delay > 0 {
			time.Sleep(delay)
		}
	}
	progress := func(done, total int) {
		st.Done, st.Total = done, total
		// State writes are progress reporting; a transient failure must
		// not kill the run (the store still checkpoints every search).
		m.writeState(st)
		if m.Progress != nil {
			m.Progress(done, total)
		}
	}

	var artifact bytes.Buffer
	switch {
	case sp.Sweep != nil:
		// Sharded sweeps farm the whole grid out as generation 0, then
		// fall through to the unchanged local run, which finds every
		// search warm in the refreshed store and assembles the artifact
		// with zero recomputation — byte-identical by construction. A
		// sweep that cannot be planned (warm start chains searches across
		// points) skips sharding and just runs locally.
		if m.Shard != nil {
			if plan, perr := shard.PlanSweep(sp.Sweep); perr == nil {
				sr, serr := m.startShard(ctx, st, shard.KindSweep, sp.Sweep)
				if serr != nil {
					return fail(serr)
				}
				serr = sr.offer(taskIndices(plan.NumPoints()))
				sr.close()
				if serr != nil {
					return fail(serr)
				}
			}
		}
		res, runErr := sweep.Run(*sp.Sweep, sweep.Options{
			Workers: m.Workers, Context: ctx, Cache: cache,
			OnPoint: onPoint, Progress: progress,
		})
		if runErr != nil {
			return fail(runErr)
		}
		res.CacheHits, res.CacheMisses = 0, 0
		if err := res.WriteJSON(&artifact); err != nil {
			return fail(fmt.Errorf("jobs: encoding result: %w", err))
		}
	case sp.Explore != nil:
		eopts := explore.Options{
			Workers: m.Workers, Context: ctx, Cache: cache,
			OnPoint: onPoint, Progress: progress,
		}
		// Sharded explorations hook PreEvaluate: each candidate batch is
		// offered as a generation and evaluated by workers before the
		// local run scores it from the warm store. The hook runs between
		// generations, so the frontier stays a function of (Spec, Seed).
		if m.Shard != nil {
			sr, serr := m.startShard(ctx, st, shard.KindExplore, sp.Explore)
			if serr != nil {
				return fail(serr)
			}
			defer sr.close()
			eopts.PreEvaluate = sr.offer
		}
		f, runErr := explore.Run(*sp.Explore, eopts)
		if runErr != nil {
			return fail(runErr)
		}
		f.CacheHits, f.CacheMisses = 0, 0
		if err := f.WriteJSON(&artifact); err != nil {
			return fail(fmt.Errorf("jobs: encoding result: %w", err))
		}
	default:
		return fail(fmt.Errorf("jobs: job %s: spec sets neither sweep nor explore", id))
	}
	if writeErr != nil {
		return fail(fmt.Errorf("jobs: streaming points: %w", writeErr))
	}
	if err := writeFileAtomic(m.resultPath(id), artifact.Bytes()); err != nil {
		return fail(err)
	}
	ts := cache.TierStats()
	st.State = StateDone
	st.Store = &ts
	if err := m.writeState(st); err != nil {
		return st, err
	}
	return st, nil
}
