package jobs

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"photoloop/internal/explore"
	"photoloop/internal/shard"
	"photoloop/internal/store"
)

// runJob submits and runs a spec to completion, returning the status and
// the result artifact bytes.
func runJob(t *testing.T, m *Manager, sp Spec) (*Status, []byte) {
	t.Helper()
	st, err := m.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	st, err = m.Run(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("run: %v (state %+v)", err, st)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	buf, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return st, buf
}

// adaptiveExploreJob exercises the multi-generation PreEvaluate path: the
// adaptive strategy offers one shard generation per candidate batch.
func adaptiveExploreJob() Spec {
	sp := exploreJob()
	sp.Explore.Name = "job-explore-adaptive"
	sp.Explore.Strategy = explore.StrategyAdaptive
	sp.Explore.Budget = 6
	return sp
}

// fidelityExploreJob trades pJ/MAC against the analog accuracy loss, so
// the sharded path also has to reproduce the fidelity post-pass (which
// runs only in the assembling process, never on the workers).
func fidelityExploreJob() Spec {
	sp := exploreJob()
	sp.Explore.Name = "job-explore-fidelity"
	sp.Explore.Objectives = []string{"pj_per_mac", "accuracy"}
	return sp
}

// TestShardedRunsByteIdentical pins the tentpole invariant: a job run
// through the coordinator (local worker loop warming the store, artifact
// assembled from it) produces the same bytes as the plain single-process
// path, for sweeps and for both explore strategies.
func TestShardedRunsByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"sweep", sweepJob()},
		{"explore-grid", exploreJob()},
		{"explore-adaptive", adaptiveExploreJob()},
		{"explore-fidelity", fidelityExploreJob()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plain := openManager(t, t.TempDir())
			_, want := runJob(t, plain, tc.spec)

			m := openManager(t, t.TempDir())
			m.Shard = shard.NewCoordinator()
			st, got := runJob(t, m, tc.spec)
			if !bytes.Equal(got, want) {
				t.Errorf("sharded artifact differs from single-process artifact:\n%s\n----\n%s", got, want)
			}
			if st.Shards == nil || st.Shards.Done != st.Shards.Ranges || st.Shards.Ranges == 0 {
				t.Errorf("sharded run's shard progress = %+v", st.Shards)
			}
			// The assembly pass computes nothing even on a cold store:
			// the worker loop's own cache did the computing, and the
			// coordinator reads it all back as disk hits.
			if st.Store == nil || st.Store.Misses != 0 || st.Store.DiskHits == 0 {
				t.Errorf("sharded assembly should be pure store hits: %+v", st.Store)
			}

			// A warm re-run assembles everything from the store: zero
			// searches, identical bytes.
			st, err := m.Run(context.Background(), st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if st.Store == nil || st.Store.Misses != 0 {
				t.Errorf("warm sharded re-run recomputed searches: %+v", st.Store)
			}
			rerun, err := m.Result(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rerun, want) {
				t.Error("warm sharded re-run artifact differs")
			}
		})
	}
}

// TestShardedRemoteWorkers runs a sharded sweep with the coordinating
// process doing none of the evaluation, at 1, 2 and 4 workers: each
// worker loop holds its own store handle on the same directory (its own
// segment — the real multi-writer layout), and every worker count must
// assemble the identical artifact from the merged segments.
func TestShardedRemoteWorkers(t *testing.T) {
	plain := openManager(t, t.TempDir())
	_, want := runJob(t, plain, sweepJob())

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			m := openManager(t, dir)
			m.Shard = shard.NewCoordinator()
			m.ShardLocal = false

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan error, workers)
			for i := 0; i < workers; i++ {
				wst, err := store.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				defer wst.Close()
				go func() {
					done <- shard.Work(ctx, shard.Local{C: m.Shard}, shard.SharedDir{S: wst}, shard.WorkerOptions{})
				}()
			}

			st, got := runJob(t, m, sweepJob())
			cancel()
			for i := 0; i < workers; i++ {
				if err := <-done; err != nil {
					t.Errorf("worker: %v", err)
				}
			}
			if !bytes.Equal(got, want) {
				t.Error("remote-worker artifact differs from single-process artifact")
			}
			// The coordinator itself computed nothing: its attempt was
			// pure store hits on whatever the workers wrote.
			if st.Store == nil || st.Store.Misses != 0 {
				t.Errorf("coordinator recomputed searches: %+v", st.Store)
			}
			if seg := m.Store().Segments(); seg < 2 {
				t.Errorf("store merged %d segments, want the workers' segments too", seg)
			}
		})
	}
}

// TestShardedFidelityExploreRemoteWorkers is the remote-worker leg for
// the accuracy objective: workers only warm the store with mapper
// searches, the coordinator alone runs the fidelity rollup during
// assembly — so the frontier (including its effective-bits annotations)
// must be byte-identical to the single-process run at every worker count.
func TestShardedFidelityExploreRemoteWorkers(t *testing.T) {
	plain := openManager(t, t.TempDir())
	_, want := runJob(t, plain, fidelityExploreJob())
	if !bytes.Contains(want, []byte(`"effective_bits"`)) {
		t.Fatalf("fidelity frontier carries no effective_bits annotation:\n%s", want)
	}

	for _, workers := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			m := openManager(t, dir)
			m.Shard = shard.NewCoordinator()
			m.ShardLocal = false

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan error, workers)
			for i := 0; i < workers; i++ {
				wst, err := store.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				defer wst.Close()
				go func() {
					done <- shard.Work(ctx, shard.Local{C: m.Shard}, shard.SharedDir{S: wst}, shard.WorkerOptions{})
				}()
			}

			st, got := runJob(t, m, fidelityExploreJob())
			cancel()
			for i := 0; i < workers; i++ {
				if err := <-done; err != nil {
					t.Errorf("worker: %v", err)
				}
			}
			if !bytes.Equal(got, want) {
				t.Error("remote-worker fidelity frontier differs from single-process artifact")
			}
			if st.Store == nil || st.Store.Misses != 0 {
				t.Errorf("coordinator recomputed searches: %+v", st.Store)
			}
		})
	}
}

// TestShardedWarmStartSweepFallsBack pins the documented fallback: a
// warm-start sweep cannot be partitioned, so a sharding manager runs it
// on the local path — same bytes, no shard progress.
func TestShardedWarmStartSweepFallsBack(t *testing.T) {
	sp := sweepJob()
	sp.Sweep.WarmStart = true

	plain := openManager(t, t.TempDir())
	_, want := runJob(t, plain, sp)

	m := openManager(t, t.TempDir())
	m.Shard = shard.NewCoordinator()
	st, got := runJob(t, m, sp)
	if !bytes.Equal(got, want) {
		t.Error("warm-start fallback artifact differs")
	}
	if st.Shards != nil {
		t.Errorf("warm-start sweep reported shard progress: %+v", st.Shards)
	}
}
