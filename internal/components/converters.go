package components

import (
	"fmt"
	"math"
)

// ADCSpec parameterizes an analog-to-digital converter using a Walden
// figure-of-merit model: energy per conversion = FOM * 2^bits. This is the
// AE/DE converter of the paper and, with CiM and photonics alike, a
// dominant energy term unless amortized by analog-domain reuse.
type ADCSpec struct {
	Name string
	// Bits is the conversion resolution.
	Bits int
	// WaldenFJPerStep is the figure of merit in femtojoules per
	// conversion step. Published ADCs span ~5-200 fJ/step depending on
	// rate and technology.
	WaldenFJPerStep float64
	// UM2 is the converter area.
	UM2 float64
}

// ADC is the built analog-to-digital converter. Beyond the Component
// interface it exposes its resolution, which the analog fidelity model
// reads to derive readout quantization noise.
type ADC struct {
	*Base
	bits int
}

// Bits returns the conversion resolution.
func (a *ADC) Bits() int { return a.bits }

// NewADC builds an ADC component. Its single action is ActionConvert.
func NewADC(s ADCSpec) (Component, error) {
	if s.Bits <= 0 || s.Bits > 16 {
		return nil, fmt.Errorf("components: adc %s: bits = %d, want 1..16", s.Name, s.Bits)
	}
	if s.WaldenFJPerStep <= 0 {
		return nil, fmt.Errorf("components: adc %s: FOM must be positive", s.Name)
	}
	pj := s.WaldenFJPerStep * math.Exp2(float64(s.Bits)) / 1000
	if s.UM2 <= 0 {
		// Area grows roughly linearly with 2^bits for SAR-class ADCs.
		s.UM2 = 20 * math.Exp2(float64(s.Bits)) / 16
	}
	return &ADC{Base: NewBase(s.Name, "adc", map[string]float64{ActionConvert: pj}, s.UM2, 0), bits: s.Bits}, nil
}

// DACSpec parameterizes a digital-to-analog converter (the DE/AE converter).
// DACs are far cheaper than ADCs; energy is modeled as a per-bit switching
// cost on a capacitive ladder.
type DACSpec struct {
	Name string
	// Bits is the DAC resolution.
	Bits int
	// PJPerBit is the switching energy per resolved bit.
	PJPerBit float64
	// UM2 is the converter area.
	UM2 float64
}

// DAC is the built digital-to-analog converter. Beyond the Component
// interface it exposes its resolution for the analog fidelity model.
type DAC struct {
	*Base
	bits int
}

// Bits returns the DAC resolution.
func (d *DAC) Bits() int { return d.bits }

// NewDAC builds a DAC component. Its single action is ActionConvert.
func NewDAC(s DACSpec) (Component, error) {
	if s.Bits <= 0 || s.Bits > 16 {
		return nil, fmt.Errorf("components: dac %s: bits = %d, want 1..16", s.Name, s.Bits)
	}
	if s.PJPerBit <= 0 {
		return nil, fmt.Errorf("components: dac %s: PJPerBit must be positive", s.Name)
	}
	pj := s.PJPerBit * float64(s.Bits)
	if s.UM2 <= 0 {
		s.UM2 = 6 * float64(s.Bits)
	}
	return &DAC{Base: NewBase(s.Name, "dac", map[string]float64{ActionConvert: pj}, s.UM2, 0), bits: s.Bits}, nil
}

func init() {
	RegisterClass("adc", func(name string, p Params) (Component, error) {
		bits, err := p.Require("bits")
		if err != nil {
			return nil, err
		}
		fom, err := p.Require("walden_fj_per_step")
		if err != nil {
			return nil, err
		}
		return NewADC(ADCSpec{Name: name, Bits: int(bits), WaldenFJPerStep: fom, UM2: p.Get("um2", 0)})
	})
	RegisterClass("dac", func(name string, p Params) (Component, error) {
		bits, err := p.Require("bits")
		if err != nil {
			return nil, err
		}
		pjb, err := p.Require("pj_per_bit")
		if err != nil {
			return nil, err
		}
		return NewDAC(DACSpec{Name: name, Bits: int(bits), PJPerBit: pjb, UM2: p.Get("um2", 0)})
	})
}
