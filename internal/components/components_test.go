package components

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))+1e-12
}

func TestDBHelpers(t *testing.T) {
	if got := DBToLinear(0); got != 1 {
		t.Errorf("DBToLinear(0) = %g", got)
	}
	if got := DBToLinear(10); !almostEqual(got, 10, 1e-9) {
		t.Errorf("DBToLinear(10) = %g", got)
	}
	if got := LinearToDB(100); !almostEqual(got, 20, 1e-9) {
		t.Errorf("LinearToDB(100) = %g", got)
	}
	if got := SplitLossDB(1); got != 0 {
		t.Errorf("SplitLossDB(1) = %g", got)
	}
	if got := SplitLossDB(8); !almostEqual(got, 9.0309, 1e-3) {
		t.Errorf("SplitLossDB(8) = %g, want ~9.03", got)
	}
	if got := MilliwattsToPicojoules(2, 3); got != 6 {
		t.Errorf("mW*ns = %g, want 6", got)
	}
}

func TestDBRoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		db := math.Mod(math.Abs(x), 60) // 0..60 dB
		return almostEqual(LinearToDB(DBToLinear(db)), db, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSRAMEnergyScalesWithCapacityAndWidth(t *testing.T) {
	small, err := NewSRAM(SRAMSpec{Name: "s", CapacityBits: 64 * 1024 * 8, AccessBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewSRAM(SRAMSpec{Name: "b", CapacityBits: 4 * 1024 * 1024 * 8, AccessBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	if MustEnergy(big, ActionRead) <= MustEnergy(small, ActionRead) {
		t.Errorf("bigger SRAM should cost more per access: %g vs %g",
			MustEnergy(big, ActionRead), MustEnergy(small, ActionRead))
	}
	wide, err := NewSRAM(SRAMSpec{Name: "w", CapacityBits: 64 * 1024 * 8, AccessBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(MustEnergy(wide, ActionRead), 4*MustEnergy(small, ActionRead), 1e-9) {
		t.Errorf("4x wider access should cost 4x: %g vs %g",
			MustEnergy(wide, ActionRead), MustEnergy(small, ActionRead))
	}
	if MustEnergy(small, ActionWrite) <= MustEnergy(small, ActionRead) {
		t.Error("writes should cost more than reads")
	}
	if MustEnergy(small, ActionUpdate) != MustEnergy(small, ActionRead)+MustEnergy(small, ActionWrite) {
		t.Error("update = read + write")
	}
	if big.Area() <= small.Area() {
		t.Error("bigger SRAM should be bigger")
	}
}

func TestSRAMBankingReducesEnergy(t *testing.T) {
	mono, _ := NewSRAM(SRAMSpec{Name: "m", CapacityBits: 1 << 23, AccessBits: 64})
	banked, _ := NewSRAM(SRAMSpec{Name: "b", CapacityBits: 1 << 23, AccessBits: 64, Banks: 8})
	if MustEnergy(banked, ActionRead) >= MustEnergy(mono, ActionRead) {
		t.Error("banking should reduce per-access energy")
	}
	if banked.Area() <= mono.Area() {
		t.Error("banking should add area overhead")
	}
}

func TestSRAMRejectsBadSpecs(t *testing.T) {
	if _, err := NewSRAM(SRAMSpec{Name: "x", CapacityBits: 0, AccessBits: 64}); err == nil {
		t.Error("accepted zero capacity")
	}
	if _, err := NewSRAM(SRAMSpec{Name: "x", CapacityBits: 1024, AccessBits: 0}); err == nil {
		t.Error("accepted zero width")
	}
}

func TestDRAM(t *testing.T) {
	d, err := NewDRAM(DRAMSpec{Name: "dram", PJPerBit: 8, AccessBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Per-word energies: 8 pJ/bit x 16-bit access.
	if MustEnergy(d, ActionRead) != 128 {
		t.Errorf("read = %g, want 128", MustEnergy(d, ActionRead))
	}
	if MustEnergy(d, ActionUpdate) != 256 {
		t.Errorf("update = %g, want 256", MustEnergy(d, ActionUpdate))
	}
	if d.Area() != 0 {
		t.Error("off-chip DRAM should not charge on-die area")
	}
	if _, err := NewDRAM(DRAMSpec{Name: "bad", AccessBits: 8}); err == nil {
		t.Error("accepted zero energy")
	}
	if _, err := NewDRAM(DRAMSpec{Name: "bad", PJPerBit: 8}); err == nil {
		t.Error("accepted zero access width")
	}
}

func TestADCWaldenScaling(t *testing.T) {
	a8, err := NewADC(ADCSpec{Name: "a8", Bits: 8, WaldenFJPerStep: 50})
	if err != nil {
		t.Fatal(err)
	}
	// 50 fJ/step * 256 steps = 12.8 pJ.
	if got := MustEnergy(a8, ActionConvert); !almostEqual(got, 12.8, 1e-9) {
		t.Errorf("8-bit ADC = %g pJ, want 12.8", got)
	}
	a10, _ := NewADC(ADCSpec{Name: "a10", Bits: 10, WaldenFJPerStep: 50})
	if !almostEqual(MustEnergy(a10, ActionConvert), 4*MustEnergy(a8, ActionConvert), 1e-9) {
		t.Error("each extra ADC bit should double energy")
	}
	if _, err := NewADC(ADCSpec{Name: "bad", Bits: 0, WaldenFJPerStep: 50}); err == nil {
		t.Error("accepted 0-bit ADC")
	}
	if _, err := NewADC(ADCSpec{Name: "bad", Bits: 8}); err == nil {
		t.Error("accepted zero FOM")
	}
}

func TestDACLinearScaling(t *testing.T) {
	d8, err := NewDAC(DACSpec{Name: "d8", Bits: 8, PJPerBit: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if got := MustEnergy(d8, ActionConvert); !almostEqual(got, 0.4, 1e-9) {
		t.Errorf("8-bit DAC = %g pJ, want 0.4", got)
	}
	// DAC should be much cheaper than a same-resolution ADC.
	a8, _ := NewADC(ADCSpec{Name: "a8", Bits: 8, WaldenFJPerStep: 50})
	if MustEnergy(d8, ActionConvert) >= MustEnergy(a8, ActionConvert) {
		t.Error("DAC should be cheaper than ADC at the same resolution")
	}
}

func TestMZMAndMRR(t *testing.T) {
	mzm, err := NewMZM(MZMSpec{Name: "mzm", ModulatePJ: 1.2, BiasMW: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if MustEnergy(mzm, ActionModulate) != 1.2 {
		t.Error("MZM modulate energy wrong")
	}
	if mzm.StaticPower() != 0.5 {
		t.Error("MZM bias power wrong")
	}
	if _, err := mzm.Energy(ActionRead); err == nil {
		t.Error("MZM should not support read")
	}

	mrr, err := NewMRR(MRRSpec{Name: "mrr", ProgramPJ: 2.5, TransitPJ: 0.01, HeaterMW: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if MustEnergy(mrr, ActionProgram) != 2.5 || MustEnergy(mrr, ActionTransit) != 0.01 {
		t.Error("MRR energies wrong")
	}
	if _, err := NewMRR(MRRSpec{Name: "bad"}); err == nil {
		t.Error("accepted zero program energy")
	}
}

func TestLaserLinkBudget(t *testing.T) {
	// 0 dB loss, 100% WPE, 1 mW sensitivity, 1 ns symbol, 1 MAC/symbol
	// => exactly 1 pJ/MAC.
	l, err := NewLaser(LaserSpec{
		Name: "l", WallPlugEfficiency: 1, PathLossDB: 0,
		DetectorSensitivityMW: 1, SymbolNS: 1, MACsPerWavelengthSymbol: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := MustEnergy(l, ActionSupply); !almostEqual(got, 1, 1e-9) {
		t.Errorf("laser supply = %g pJ/MAC, want 1", got)
	}
	// 10 dB loss at 20% WPE => 50x the energy.
	l2, _ := NewLaser(LaserSpec{
		Name: "l2", WallPlugEfficiency: 0.2, PathLossDB: 10,
		DetectorSensitivityMW: 1, SymbolNS: 1, MACsPerWavelengthSymbol: 1,
	})
	if got := MustEnergy(l2, ActionSupply); !almostEqual(got, 50, 1e-9) {
		t.Errorf("laser supply = %g pJ/MAC, want 50", got)
	}
	// Fanning one wavelength across 9 MACs divides per-MAC energy by 9.
	l3, _ := NewLaser(LaserSpec{
		Name: "l3", WallPlugEfficiency: 0.2, PathLossDB: 10,
		DetectorSensitivityMW: 1, SymbolNS: 1, MACsPerWavelengthSymbol: 9,
	})
	if got := MustEnergy(l3, ActionSupply); !almostEqual(got, 50.0/9, 1e-9) {
		t.Errorf("laser supply = %g pJ/MAC, want %g", got, 50.0/9)
	}
	if _, err := NewLaser(LaserSpec{Name: "bad", WallPlugEfficiency: 1.5}); err == nil {
		t.Error("accepted WPE > 1")
	}
}

func TestLinkBudgetAccumulation(t *testing.T) {
	var b LinkBudget
	b.Add("coupler", 1.5).Add("mzm", 3).Add("star", SplitLossDB(8)).Add("ring", 0.5)
	want := 1.5 + 3 + SplitLossDB(8) + 0.5
	if !almostEqual(b.TotalDB(), want, 1e-9) {
		t.Errorf("TotalDB = %g, want %g", b.TotalDB(), want)
	}
	launch := b.LaunchPowerMW(0.1)
	if !almostEqual(launch, 0.1*DBToLinear(want), 1e-9) {
		t.Errorf("LaunchPowerMW = %g", launch)
	}
	if m := b.Margin(launch, 0.1); !almostEqual(m, 0, 1e-9) {
		t.Errorf("Margin at exact launch power = %g, want 0", m)
	}
	if m := b.Margin(2*launch, 0.1); !almostEqual(m, LinearToDB(2), 1e-9) {
		t.Errorf("Margin at 2x = %g, want 3dB", m)
	}
}

func TestStarCouplerAndWaveguide(t *testing.T) {
	sc := StarCouplerSpec{Name: "sc", Ports: 8, ExcessLossDB: 0.5}
	c, err := NewStarCoupler(sc)
	if err != nil {
		t.Fatal(err)
	}
	if MustEnergy(c, ActionTransit) != 0 {
		t.Error("star coupler transit should be free")
	}
	if !almostEqual(sc.TotalLossDB(), SplitLossDB(8)+0.5, 1e-9) {
		t.Errorf("coupler loss = %g", sc.TotalLossDB())
	}
	wg := WaveguideSpec{Name: "wg", LengthMM: 5, LossDBPerMM: 0.2}
	w, err := NewWaveguide(wg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(wg.LossDB(), 1.0, 1e-9) {
		t.Errorf("waveguide loss = %g, want 1", wg.LossDB())
	}
	if w.Area() <= 0 {
		t.Error("waveguide should occupy area")
	}
}

func TestDigitalMACQuadraticScaling(t *testing.T) {
	m8, err := NewDigitalMAC(DigitalMACSpec{Name: "m8", Bits: 8, PJAt8Bit: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	m16, _ := NewDigitalMAC(DigitalMACSpec{Name: "m16", Bits: 16, PJAt8Bit: 0.25})
	if !almostEqual(MustEnergy(m16, ActionMAC), 4*MustEnergy(m8, ActionMAC), 1e-9) {
		t.Error("16-bit MAC should cost 4x an 8-bit MAC")
	}
}

func TestWireEnergy(t *testing.T) {
	w, err := NewWire(WireSpec{Name: "w", WordBits: 16, LengthMM: 2, PJPerBitMM: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if got := MustEnergy(w, ActionTransfer); !almostEqual(got, 3.2, 1e-9) {
		t.Errorf("wire transfer = %g, want 3.2", got)
	}
}

func TestRegistryBuildsEveryClass(t *testing.T) {
	cases := []struct {
		class  string
		params Params
	}{
		{"sram", Params{"capacity_bits": 1 << 20, "access_bits": 64}},
		{"regfile", Params{"access_bits": 16}},
		{"dram", Params{"pj_per_bit": 8}},
		{"adc", Params{"bits": 8, "walden_fj_per_step": 50}},
		{"dac", Params{"bits": 8, "pj_per_bit": 0.05}},
		{"mzm", Params{"modulate_pj": 1}},
		{"mrr", Params{"program_pj": 2}},
		{"photodiode", Params{"detect_pj": 0.5}},
		{"laser", Params{"per_mac_pj": 0.3}},
		{"laser", Params{"wall_plug_efficiency": 0.2, "path_loss_db": 12, "detector_sensitivity_mw": 0.1, "symbol_ns": 0.2, "macs_per_wavelength_symbol": 9}},
		{"star_coupler", Params{"ports": 8}},
		{"waveguide", Params{"length_mm": 3}},
		{"digital_mac", Params{"bits": 8}},
		{"wire", Params{"word_bits": 16}},
	}
	for _, c := range cases {
		comp, err := Build(c.class, "x-"+c.class, c.params)
		if err != nil {
			t.Errorf("Build(%s): %v", c.class, err)
			continue
		}
		if comp.Class() != c.class {
			t.Errorf("Build(%s).Class() = %s", c.class, comp.Class())
		}
		if len(comp.Actions()) == 0 {
			t.Errorf("Build(%s) has no actions", c.class)
		}
	}
	if _, err := Build("flux_capacitor", "x", nil); err == nil {
		t.Error("Build accepted unknown class")
	}
	// Missing required params must error.
	if _, err := Build("adc", "x", Params{"bits": 8}); err == nil {
		t.Error("adc built without FOM")
	}
}

func TestClassesSortedAndComplete(t *testing.T) {
	classes := Classes()
	for i := 1; i < len(classes); i++ {
		if classes[i-1] >= classes[i] {
			t.Fatalf("Classes() not sorted: %v", classes)
		}
	}
	for _, want := range []string{"sram", "dram", "adc", "dac", "mzm", "mrr", "photodiode", "laser", "star_coupler", "waveguide", "digital_mac", "wire", "regfile"} {
		found := false
		for _, c := range classes {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Errorf("class %q not registered", want)
		}
	}
}

func TestLibrary(t *testing.T) {
	lib := NewLibrary()
	c, _ := Build("dram", "DRAM", Params{"pj_per_bit": 8})
	if err := lib.Add(c); err != nil {
		t.Fatal(err)
	}
	if err := lib.Add(c); err == nil {
		t.Error("library accepted duplicate")
	}
	if err := lib.Add(nil); err == nil {
		t.Error("library accepted nil")
	}
	got, err := lib.Get("DRAM")
	if err != nil || got != c {
		t.Errorf("Get(DRAM) = %v, %v", got, err)
	}
	if _, err := lib.Get("nope"); err == nil {
		t.Error("Get(nope) succeeded")
	}
	if !lib.Has("DRAM") || lib.Has("nope") {
		t.Error("Has wrong")
	}
	if lib.Len() != 1 || len(lib.Names()) != 1 {
		t.Error("Len/Names wrong")
	}
}

func TestUnsupportedActionErrorsAreDescriptive(t *testing.T) {
	c, _ := Build("photodiode", "PD", Params{"detect_pj": 0.5})
	_, err := c.Energy("mac")
	if err == nil || !strings.Contains(err.Error(), "PD") {
		t.Errorf("error should name the component: %v", err)
	}
}
