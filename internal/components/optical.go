package components

import (
	"fmt"
	"math"
)

// MZMSpec parameterizes a Mach-Zehnder modulator: the AE/AO converter used
// on Albireo's input path. One "modulate" action imprints one analog value
// onto an optical carrier for one symbol time.
type MZMSpec struct {
	Name string
	// ModulatePJ is the dynamic energy per modulated symbol (CV^2-class
	// driver energy). Conservative silicon MZMs are ~1 pJ/symbol;
	// aggressive projections reach tens of fJ.
	ModulatePJ float64
	// InsertionLossDB is charged to the optical link budget.
	InsertionLossDB float64
	// BiasMW is static bias/thermal power.
	BiasMW float64
	// UM2 is device area; MZMs are long devices (~1e4-1e5 um2).
	UM2 float64
}

// NewMZM builds a Mach-Zehnder modulator component.
func NewMZM(s MZMSpec) (Component, error) {
	if s.ModulatePJ <= 0 {
		return nil, fmt.Errorf("components: mzm %s: ModulatePJ must be positive", s.Name)
	}
	if s.UM2 <= 0 {
		s.UM2 = 30000
	}
	return NewBase(s.Name, "mzm", map[string]float64{
		ActionModulate: s.ModulatePJ,
	}, s.UM2, s.BiasMW), nil
}

// MRRSpec parameterizes a microring resonator weight element: the AE/AO
// multiplier of Albireo. Two actions matter: "program" retunes the ring to
// hold a new weight (charged once per weight fill, amortized by reuse — the
// Fig. 5 lever), and "transit" is the per-MAC optical pass.
type MRRSpec struct {
	Name string
	// ProgramPJ is the energy to retune the ring to a new weight value
	// (carrier injection / thermal settle).
	ProgramPJ float64
	// TransitPJ is the marginal per-pass energy (usually tiny).
	TransitPJ float64
	// ThroughLossDB is the per-ring insertion loss for the link budget.
	ThroughLossDB float64
	// HeaterMW is the static thermal-stabilization power per ring.
	HeaterMW float64
	// UM2 is the ring footprint (~100-400 um2 with drivers).
	UM2 float64
}

// NewMRR builds a microring resonator component.
func NewMRR(s MRRSpec) (Component, error) {
	if s.ProgramPJ <= 0 {
		return nil, fmt.Errorf("components: mrr %s: ProgramPJ must be positive", s.Name)
	}
	if s.TransitPJ < 0 {
		return nil, fmt.Errorf("components: mrr %s: TransitPJ must be non-negative", s.Name)
	}
	if s.UM2 <= 0 {
		s.UM2 = 200
	}
	return NewBase(s.Name, "mrr", map[string]float64{
		ActionProgram: s.ProgramPJ,
		ActionTransit: s.TransitPJ,
	}, s.UM2, s.HeaterMW), nil
}

// PhotodiodeSpec parameterizes a photodiode plus transimpedance amplifier:
// the AO/AE converter. One "detect" action converts one optical partial sum
// into an analog-electrical value.
type PhotodiodeSpec struct {
	Name string
	// DetectPJ is the energy per detected sample (TIA dominated).
	DetectPJ float64
	// SensitivityMW is the minimum optical power for the target SNR —
	// used by the laser budget model.
	SensitivityMW float64
	// UM2 is the detector+TIA area.
	UM2 float64
}

// Photodiode is the built photodiode+TIA. Beyond the Component interface
// it exposes its sensitivity floor, which the analog fidelity model uses
// as the received-power fallback when no physical laser is present.
type Photodiode struct {
	*Base
	sensitivityMW float64
}

// SensitivityMW returns the minimum received optical power for the target
// SNR (0 when the spec left it unset).
func (p *Photodiode) SensitivityMW() float64 { return p.sensitivityMW }

// NewPhotodiode builds a photodiode+TIA component.
func NewPhotodiode(s PhotodiodeSpec) (Component, error) {
	if s.DetectPJ <= 0 {
		return nil, fmt.Errorf("components: photodiode %s: DetectPJ must be positive", s.Name)
	}
	if s.SensitivityMW < 0 {
		return nil, fmt.Errorf("components: photodiode %s: negative sensitivity", s.Name)
	}
	if s.UM2 <= 0 {
		s.UM2 = 500
	}
	return &Photodiode{Base: NewBase(s.Name, "photodiode", map[string]float64{
		ActionDetect: s.DetectPJ,
	}, s.UM2, 0), sensitivityMW: s.SensitivityMW}, nil
}

// LaserSpec parameterizes the (off-chip) laser supply from a physical link
// budget: the photodiode must receive SensitivityMW after the optical path
// loses PathLossDB, and the wall-plug efficiency inflates the electrical
// cost. The per-MAC energy divides one wavelength-symbol's energy by the
// MACs it carries.
type LaserSpec struct {
	Name string
	// WallPlugEfficiency is optical-out / electrical-in (0..1].
	WallPlugEfficiency float64
	// PathLossDB is the end-to-end optical loss from laser to detector.
	PathLossDB float64
	// DetectorSensitivityMW is the required received power per
	// wavelength.
	DetectorSensitivityMW float64
	// SymbolNS is the optical symbol (cycle) duration in nanoseconds.
	SymbolNS float64
	// MACsPerWavelengthSymbol is how many MACs one wavelength-symbol
	// carries (fan-out of one carrier across parallel multipliers).
	MACsPerWavelengthSymbol float64
}

// Laser is the built laser supply. Beyond the Component interface it
// exposes the received power its link budget delivers at the detector,
// which the analog fidelity model turns into shot noise (0 for lasers
// built from a calibrated per-MAC constant, which carry no link
// information).
type Laser struct {
	*Base
	receivedMW float64
}

// ReceivedPowerMW returns the optical power delivered at the detector per
// wavelength (the link budget's sensitivity target), or 0 when the laser
// was built without a link budget.
func (l *Laser) ReceivedPowerMW() float64 { return l.receivedMW }

// NewLaser builds a laser component. Its "supply" action is the per-MAC
// electrical energy drawn from the wall.
func NewLaser(s LaserSpec) (Component, error) {
	if s.WallPlugEfficiency <= 0 || s.WallPlugEfficiency > 1 {
		return nil, fmt.Errorf("components: laser %s: wall-plug efficiency %.3f out of (0,1]", s.Name, s.WallPlugEfficiency)
	}
	if s.DetectorSensitivityMW <= 0 || s.SymbolNS <= 0 || s.MACsPerWavelengthSymbol <= 0 {
		return nil, fmt.Errorf("components: laser %s: sensitivity, symbol time and MACs/symbol must be positive", s.Name)
	}
	if s.PathLossDB < 0 {
		return nil, fmt.Errorf("components: laser %s: negative path loss", s.Name)
	}
	launchMW := s.DetectorSensitivityMW * DBToLinear(s.PathLossDB)
	electricalMW := launchMW / s.WallPlugEfficiency
	perSymbolPJ := MilliwattsToPicojoules(electricalMW, s.SymbolNS)
	perMAC := perSymbolPJ / s.MACsPerWavelengthSymbol
	// The laser is continuously on while the accelerator runs; expose the
	// electrical power as static power too so utilization studies can
	// charge idle symbols.
	return &Laser{Base: NewBase(s.Name, "laser", map[string]float64{
		ActionSupply: perMAC,
	}, 0, electricalMW), receivedMW: s.DetectorSensitivityMW}, nil
}

// NewLaserPerMAC builds a laser component directly from a per-MAC supply
// energy, bypassing the link-budget model (used when calibrating to
// published numbers).
func NewLaserPerMAC(name string, perMACPJ, staticMW float64) (Component, error) {
	if perMACPJ <= 0 {
		return nil, fmt.Errorf("components: laser %s: per-MAC energy must be positive", name)
	}
	return &Laser{Base: NewBase(name, "laser", map[string]float64{ActionSupply: perMACPJ}, 0, staticMW)}, nil
}

// StarCouplerSpec parameterizes an NxN star coupler, the passive broadcast
// element of Albireo. It costs no dynamic energy but contributes split loss
// to the link budget and occupies area.
type StarCouplerSpec struct {
	Name string
	// Ports is the fan-out N.
	Ports int
	// ExcessLossDB is loss beyond the ideal 10*log10(N) split.
	ExcessLossDB float64
	// UM2PerPort scales the coupler footprint.
	UM2PerPort float64
}

// NewStarCoupler builds a star coupler component.
func NewStarCoupler(s StarCouplerSpec) (Component, error) {
	if s.Ports < 1 {
		return nil, fmt.Errorf("components: star coupler %s: ports = %d, want >= 1", s.Name, s.Ports)
	}
	if s.UM2PerPort <= 0 {
		s.UM2PerPort = 400
	}
	return NewBase(s.Name, "star_coupler", map[string]float64{
		ActionTransit: 0,
	}, s.UM2PerPort*float64(s.Ports), 0), nil
}

// TotalLossDB returns the coupler's contribution to the link budget.
func (s StarCouplerSpec) TotalLossDB() float64 {
	return SplitLossDB(s.Ports) + s.ExcessLossDB
}

// WaveguideSpec parameterizes on-chip waveguide routing: passive, lossy,
// and area-consuming.
type WaveguideSpec struct {
	Name string
	// LengthMM is the routed length.
	LengthMM float64
	// LossDBPerMM is propagation loss (silicon ~1-3 dB/cm => 0.1-0.3/mm).
	LossDBPerMM float64
	// UM2PerMM is the footprint per routed mm.
	UM2PerMM float64
}

// NewWaveguide builds a waveguide component.
func NewWaveguide(s WaveguideSpec) (Component, error) {
	if s.LengthMM < 0 {
		return nil, fmt.Errorf("components: waveguide %s: negative length", s.Name)
	}
	if s.UM2PerMM <= 0 {
		s.UM2PerMM = 500
	}
	return NewBase(s.Name, "waveguide", map[string]float64{
		ActionTransit: 0,
	}, s.UM2PerMM*s.LengthMM, 0), nil
}

// LossDB returns the waveguide's contribution to the link budget.
func (s WaveguideSpec) LossDB() float64 { return s.LossDBPerMM * s.LengthMM }

// LinkBudget accumulates optical losses along a laser-to-detector path and
// yields the required laser launch power.
type LinkBudget struct {
	items []struct {
		name string
		db   float64
	}
}

// Add appends a named loss contribution in dB.
func (b *LinkBudget) Add(name string, db float64) *LinkBudget {
	b.items = append(b.items, struct {
		name string
		db   float64
	}{name, db})
	return b
}

// TotalDB returns the summed path loss.
func (b *LinkBudget) TotalDB() float64 {
	var total float64
	for _, it := range b.items {
		total += it.db
	}
	return total
}

// LaunchPowerMW returns the laser launch power needed to deliver
// sensitivity mW at the detector through this budget.
func (b *LinkBudget) LaunchPowerMW(sensitivityMW float64) float64 {
	return sensitivityMW * DBToLinear(b.TotalDB())
}

// Margin returns the SNR margin in dB for a given launch power.
func (b *LinkBudget) Margin(launchMW, sensitivityMW float64) float64 {
	if launchMW <= 0 || sensitivityMW <= 0 {
		return math.Inf(-1)
	}
	return LinearToDB(launchMW/sensitivityMW) - b.TotalDB()
}

func init() {
	RegisterClass("mzm", func(name string, p Params) (Component, error) {
		e, err := p.Require("modulate_pj")
		if err != nil {
			return nil, err
		}
		return NewMZM(MZMSpec{Name: name, ModulatePJ: e, BiasMW: p.Get("bias_mw", 0), UM2: p.Get("um2", 0)})
	})
	RegisterClass("mrr", func(name string, p Params) (Component, error) {
		e, err := p.Require("program_pj")
		if err != nil {
			return nil, err
		}
		return NewMRR(MRRSpec{
			Name: name, ProgramPJ: e,
			TransitPJ: p.Get("transit_pj", 0),
			HeaterMW:  p.Get("heater_mw", 0),
			UM2:       p.Get("um2", 0),
		})
	})
	RegisterClass("photodiode", func(name string, p Params) (Component, error) {
		e, err := p.Require("detect_pj")
		if err != nil {
			return nil, err
		}
		return NewPhotodiode(PhotodiodeSpec{Name: name, DetectPJ: e, SensitivityMW: p.Get("sensitivity_mw", 0), UM2: p.Get("um2", 0)})
	})
	RegisterClass("laser", func(name string, p Params) (Component, error) {
		if pj, ok := p["per_mac_pj"]; ok {
			return NewLaserPerMAC(name, pj, p.Get("static_mw", 0))
		}
		wpe, err := p.Require("wall_plug_efficiency")
		if err != nil {
			return nil, err
		}
		return NewLaser(LaserSpec{
			Name:                    name,
			WallPlugEfficiency:      wpe,
			PathLossDB:              p.Get("path_loss_db", 0),
			DetectorSensitivityMW:   p.Get("detector_sensitivity_mw", 0.01),
			SymbolNS:                p.Get("symbol_ns", 0.2),
			MACsPerWavelengthSymbol: p.Get("macs_per_wavelength_symbol", 1),
		})
	})
	RegisterClass("star_coupler", func(name string, p Params) (Component, error) {
		ports, err := p.Require("ports")
		if err != nil {
			return nil, err
		}
		return NewStarCoupler(StarCouplerSpec{Name: name, Ports: int(ports), ExcessLossDB: p.Get("excess_loss_db", 0)})
	})
	RegisterClass("waveguide", func(name string, p Params) (Component, error) {
		return NewWaveguide(WaveguideSpec{
			Name:        name,
			LengthMM:    p.Get("length_mm", 0),
			LossDBPerMM: p.Get("loss_db_per_mm", 0.2),
		})
	})
}
