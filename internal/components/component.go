// Package components is the plug-in energy/area estimator library, playing
// the role Accelergy plays underneath CiMLoop: every hardware primitive —
// electrical (SRAM, DRAM, ADC, DAC, digital MAC, wires) and photonic
// (microring resonators, Mach-Zehnder modulators, photodiodes, lasers, star
// couplers, waveguides) — is a Component exposing per-action energies in
// picojoules, area in square micrometers, and static power in milliwatts.
//
// Components are deliberately parameter-driven rather than
// technology-table-driven: the paper's three Albireo scaling projections
// (conservative / moderate / aggressive) are expressed as three parameter
// sets over the same classes (see internal/albireo).
package components

import (
	"fmt"
	"sort"
)

// Standard action names shared across component classes. A component only
// supports the subset that makes physical sense for it.
const (
	ActionRead     = "read"     // read one word
	ActionWrite    = "write"    // write one word
	ActionUpdate   = "update"   // read-modify-write one word (accumulation)
	ActionConvert  = "convert"  // convert one value across domains (ADC/DAC)
	ActionProgram  = "program"  // (re)program a stored analog value (MRR weight)
	ActionModulate = "modulate" // modulate one value onto an optical carrier
	ActionDetect   = "detect"   // detect one optical value (photodiode+TIA)
	ActionTransit  = "transit"  // pass through a passive/low-energy element
	ActionMAC      = "mac"      // one multiply-accumulate
	ActionTransfer = "transfer" // move one word across a wire/link
	ActionSupply   = "supply"   // per-MAC optical supply energy (laser)
)

// Component is the estimator interface. Energies are picojoules per action,
// area is µm², static power is mW.
type Component interface {
	// Name identifies this component instance (e.g. "GlobalBuffer").
	Name() string
	// Class identifies the component class (e.g. "sram").
	Class() string
	// Energy returns the energy of one action in picojoules.
	Energy(action string) (float64, error)
	// Area returns the component area in square micrometers.
	Area() float64
	// StaticPower returns always-on power in milliwatts (e.g. laser wall
	// plug, ring heaters); charged per cycle by the evaluator.
	StaticPower() float64
	// Actions lists the supported action names, sorted.
	Actions() []string
}

// Base is a table-driven Component implementation embedded by concrete
// classes.
type Base struct {
	name    string
	class   string
	actions map[string]float64 // pJ per action
	area    float64            // µm²
	static  float64            // mW
}

// NewBase builds a table-driven component.
func NewBase(name, class string, actions map[string]float64, area, static float64) *Base {
	cp := make(map[string]float64, len(actions))
	for k, v := range actions {
		cp[k] = v
	}
	return &Base{name: name, class: class, actions: cp, area: area, static: static}
}

// Name implements Component.
func (b *Base) Name() string { return b.name }

// Class implements Component.
func (b *Base) Class() string { return b.class }

// Energy implements Component.
func (b *Base) Energy(action string) (float64, error) {
	e, ok := b.actions[action]
	if !ok {
		return 0, fmt.Errorf("components: %s (%s) does not support action %q", b.name, b.class, action)
	}
	return e, nil
}

// Area implements Component.
func (b *Base) Area() float64 { return b.area }

// StaticPower implements Component.
func (b *Base) StaticPower() float64 { return b.static }

// Actions implements Component.
func (b *Base) Actions() []string {
	out := make([]string, 0, len(b.actions))
	for a := range b.actions {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// MustEnergy returns the energy for an action, panicking on unsupported
// actions. For use in evaluator hot paths after validation.
func MustEnergy(c Component, action string) float64 {
	e, err := c.Energy(action)
	if err != nil {
		panic(err)
	}
	return e
}

// Params is a flat parameter bag used by the class registry (the Accelergy
// "attributes" analogue) for spec-driven construction.
type Params map[string]float64

// Get returns the named parameter or the default.
func (p Params) Get(key string, def float64) float64 {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// Require returns the named parameter or an error.
func (p Params) Require(key string) (float64, error) {
	v, ok := p[key]
	if !ok {
		return 0, fmt.Errorf("components: missing required parameter %q", key)
	}
	return v, nil
}

// Factory builds a component of some class from parameters.
type Factory func(name string, p Params) (Component, error)

var registry = map[string]Factory{}

// RegisterClass installs a factory for a component class. It panics on
// duplicate registration (a programming error).
func RegisterClass(class string, f Factory) {
	if _, dup := registry[class]; dup {
		panic(fmt.Sprintf("components: duplicate class %q", class))
	}
	registry[class] = f
}

// Build constructs a component of the named class.
func Build(class, name string, p Params) (Component, error) {
	f, ok := registry[class]
	if !ok {
		return nil, fmt.Errorf("components: unknown class %q", class)
	}
	return f(name, p)
}

// Classes returns the registered class names, sorted.
func Classes() []string {
	out := make([]string, 0, len(registry))
	for c := range registry {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
