package components

import (
	"fmt"
	"math"
)

// DigitalMACSpec parameterizes a conventional digital multiply-accumulate
// unit, used for electrical-baseline comparisons. Energy scales roughly
// quadratically with operand width (multiplier array dominated).
type DigitalMACSpec struct {
	Name string
	// Bits is the operand precision.
	Bits int
	// PJAt8Bit is the per-MAC energy at 8-bit operands.
	PJAt8Bit float64
	// UM2At8Bit is the area at 8-bit operands.
	UM2At8Bit float64
}

// NewDigitalMAC builds a digital MAC component.
func NewDigitalMAC(s DigitalMACSpec) (Component, error) {
	if s.Bits <= 0 || s.Bits > 64 {
		return nil, fmt.Errorf("components: digital mac %s: bits = %d, want 1..64", s.Name, s.Bits)
	}
	if s.PJAt8Bit <= 0 {
		s.PJAt8Bit = 0.25
	}
	if s.UM2At8Bit <= 0 {
		s.UM2At8Bit = 350
	}
	scale := math.Pow(float64(s.Bits)/8, 2)
	return NewBase(s.Name, "digital_mac", map[string]float64{
		ActionMAC: s.PJAt8Bit * scale,
	}, s.UM2At8Bit*scale, 0), nil
}

// WireSpec parameterizes on-chip electrical interconnect: a per-bit-per-mm
// switching energy times a routed length, with one "transfer" moving one
// word.
type WireSpec struct {
	Name string
	// WordBits is the transfer width.
	WordBits int
	// LengthMM is the routed distance.
	LengthMM float64
	// PJPerBitMM is the wire energy coefficient (~0.05-0.2 pJ/bit/mm).
	PJPerBitMM float64
}

// NewWire builds an electrical interconnect component.
func NewWire(s WireSpec) (Component, error) {
	if s.WordBits <= 0 {
		return nil, fmt.Errorf("components: wire %s: word bits must be positive", s.Name)
	}
	if s.LengthMM < 0 {
		return nil, fmt.Errorf("components: wire %s: negative length", s.Name)
	}
	if s.PJPerBitMM <= 0 {
		s.PJPerBitMM = 0.08
	}
	return NewBase(s.Name, "wire", map[string]float64{
		ActionTransfer: s.PJPerBitMM * float64(s.WordBits) * s.LengthMM,
	}, 0, 0), nil
}

func init() {
	RegisterClass("digital_mac", func(name string, p Params) (Component, error) {
		bits, err := p.Require("bits")
		if err != nil {
			return nil, err
		}
		return NewDigitalMAC(DigitalMACSpec{
			Name: name, Bits: int(bits),
			PJAt8Bit:  p.Get("pj_at_8bit", 0),
			UM2At8Bit: p.Get("um2_at_8bit", 0),
		})
	})
	RegisterClass("wire", func(name string, p Params) (Component, error) {
		bits, err := p.Require("word_bits")
		if err != nil {
			return nil, err
		}
		return NewWire(WireSpec{
			Name: name, WordBits: int(bits),
			LengthMM:   p.Get("length_mm", 1),
			PJPerBitMM: p.Get("pj_per_bit_mm", 0),
		})
	})
}
