package components

import "math"

// Optical link budgets are naturally expressed in decibels; these helpers
// keep the dB arithmetic in one place.

// DBToLinear converts a gain in dB to a linear power ratio.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to dB.
func LinearToDB(ratio float64) float64 { return 10 * math.Log10(ratio) }

// SplitLossDB returns the intrinsic loss of an ideal 1:n power splitter.
func SplitLossDB(n int) float64 {
	if n <= 1 {
		return 0
	}
	return LinearToDB(float64(n))
}

// MilliwattsToPicojoules converts a power in mW sustained for a duration in
// nanoseconds into picojoules. (1 mW * 1 ns = 1 pJ.)
func MilliwattsToPicojoules(mw, ns float64) float64 { return mw * ns }
