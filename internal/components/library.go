package components

import (
	"fmt"
	"sort"
)

// Library is a named collection of component instances; an architecture
// references components by name.
type Library struct {
	byName map[string]Component
}

// NewLibrary builds an empty library.
func NewLibrary() *Library {
	return &Library{byName: make(map[string]Component)}
}

// Add installs a component, rejecting duplicates.
func (l *Library) Add(c Component) error {
	if c == nil {
		return fmt.Errorf("components: nil component")
	}
	if _, dup := l.byName[c.Name()]; dup {
		return fmt.Errorf("components: duplicate component %q", c.Name())
	}
	l.byName[c.Name()] = c
	return nil
}

// MustAdd installs a component, panicking on duplicates (builder use).
func (l *Library) MustAdd(c Component) {
	if err := l.Add(c); err != nil {
		panic(err)
	}
}

// Get returns the named component.
func (l *Library) Get(name string) (Component, error) {
	c, ok := l.byName[name]
	if !ok {
		return nil, fmt.Errorf("components: unknown component %q", name)
	}
	return c, nil
}

// Has reports whether the library contains the named component.
func (l *Library) Has(name string) bool {
	_, ok := l.byName[name]
	return ok
}

// Names returns the component names, sorted.
func (l *Library) Names() []string {
	out := make([]string, 0, len(l.byName))
	for n := range l.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of components.
func (l *Library) Len() int { return len(l.byName) }
