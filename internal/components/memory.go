package components

import (
	"fmt"
	"math"
)

// SRAMSpec parameterizes an on-chip SRAM buffer. The energy model is a
// CACTI-like analytical fit: per-bit access energy grows with the square
// root of capacity (wordline/bitline length), scaled by a technology
// coefficient.
type SRAMSpec struct {
	Name string
	// CapacityBits is the total storage capacity.
	CapacityBits int64
	// AccessBits is the width of one read/write access.
	AccessBits int
	// Banks splits the array; each bank behaves like an independent,
	// smaller SRAM (reduces per-access energy, adds area overhead).
	Banks int
	// BitPJPerSqrtKiB is the technology coefficient: pJ per accessed bit
	// per sqrt(bank KiB). Typical 28nm-class value ~0.009.
	BitPJPerSqrtKiB float64
	// BitPJFloor is the capacity-independent per-bit floor (drivers,
	// sense amps). Typical ~0.015 pJ/bit.
	BitPJFloor float64
	// UM2PerBit is the area per bit including peripheral overhead.
	UM2PerBit float64
	// LeakMWPerMiB is static leakage per MiB of capacity.
	LeakMWPerMiB float64
}

// NewSRAM builds an SRAM component from its spec.
func NewSRAM(s SRAMSpec) (Component, error) {
	if s.CapacityBits <= 0 || s.AccessBits <= 0 {
		return nil, fmt.Errorf("components: sram %s: capacity and access width must be positive", s.Name)
	}
	if s.Banks <= 0 {
		s.Banks = 1
	}
	if s.BitPJPerSqrtKiB <= 0 {
		s.BitPJPerSqrtKiB = 0.009
	}
	if s.BitPJFloor <= 0 {
		s.BitPJFloor = 0.015
	}
	if s.UM2PerBit <= 0 {
		s.UM2PerBit = 0.35
	}
	bankKiB := float64(s.CapacityBits) / float64(s.Banks) / 8 / 1024
	perBit := s.BitPJFloor + s.BitPJPerSqrtKiB*math.Sqrt(bankKiB)
	read := perBit * float64(s.AccessBits)
	// Writes drive full bitline swings: ~1.15x reads in most CACTI fits.
	write := 1.15 * read
	actions := map[string]float64{
		ActionRead:   read,
		ActionWrite:  write,
		ActionUpdate: read + write,
	}
	area := float64(s.CapacityBits) * s.UM2PerBit * (1 + 0.03*float64(s.Banks-1))
	leak := s.LeakMWPerMiB * float64(s.CapacityBits) / 8 / (1 << 20)
	return NewBase(s.Name, "sram", actions, area, leak), nil
}

// NewRegisterFile builds a small register file / latch bank with flat
// per-bit energies (no bitline scaling).
func NewRegisterFile(name string, accessBits int, bitPJ float64) Component {
	if bitPJ <= 0 {
		bitPJ = 0.0024
	}
	e := bitPJ * float64(accessBits)
	return NewBase(name, "regfile", map[string]float64{
		ActionRead:   e,
		ActionWrite:  e,
		ActionUpdate: 2 * e,
	}, 1.2*float64(accessBits), 0)
}

// DRAMSpec parameterizes the off-chip DRAM model: a flat per-bit energy
// times the access word width, plus a bandwidth attribute consumed by the
// throughput model.
type DRAMSpec struct {
	Name string
	// PJPerBit is the end-to-end access energy per bit (I/O + array +
	// controller). LPDDR4-class systems are ~4-8 pJ/bit; DDR3/4-era
	// systems with PHY and controller are ~20-40 pJ/bit.
	PJPerBit float64
	// AccessBits is the width of one word access (per-action energies
	// are per word, matching the evaluator's word counts).
	AccessBits int
	// StaticMW is background power (refresh, PHY idle).
	StaticMW float64
}

// NewDRAM builds a DRAM component.
func NewDRAM(s DRAMSpec) (Component, error) {
	if s.PJPerBit <= 0 {
		return nil, fmt.Errorf("components: dram %s: PJPerBit must be positive", s.Name)
	}
	if s.AccessBits <= 0 {
		return nil, fmt.Errorf("components: dram %s: AccessBits must be positive", s.Name)
	}
	perWord := s.PJPerBit * float64(s.AccessBits)
	actions := map[string]float64{
		ActionRead:   perWord,
		ActionWrite:  perWord,
		ActionUpdate: 2 * perWord,
	}
	// Off-chip: no on-die area charged.
	return NewBase(s.Name, "dram", actions, 0, s.StaticMW), nil
}

func init() {
	RegisterClass("sram", func(name string, p Params) (Component, error) {
		cap, err := p.Require("capacity_bits")
		if err != nil {
			return nil, err
		}
		width, err := p.Require("access_bits")
		if err != nil {
			return nil, err
		}
		return NewSRAM(SRAMSpec{
			Name:            name,
			CapacityBits:    int64(cap),
			AccessBits:      int(width),
			Banks:           int(p.Get("banks", 1)),
			BitPJPerSqrtKiB: p.Get("bit_pj_per_sqrt_kib", 0),
			BitPJFloor:      p.Get("bit_pj_floor", 0),
			UM2PerBit:       p.Get("um2_per_bit", 0),
			LeakMWPerMiB:    p.Get("leak_mw_per_mib", 0),
		})
	})
	RegisterClass("regfile", func(name string, p Params) (Component, error) {
		width, err := p.Require("access_bits")
		if err != nil {
			return nil, err
		}
		return NewRegisterFile(name, int(width), p.Get("bit_pj", 0)), nil
	})
	RegisterClass("dram", func(name string, p Params) (Component, error) {
		pj, err := p.Require("pj_per_bit")
		if err != nil {
			return nil, err
		}
		return NewDRAM(DRAMSpec{
			Name: name, PJPerBit: pj,
			AccessBits: int(p.Get("access_bits", 8)),
			StaticMW:   p.Get("static_mw", 0),
		})
	})
}
