// Package flakyproxy is a fault-injecting HTTP middleman for tests: it
// wraps a backend handler and, on a deterministic schedule, drops
// responses (the backend did the work but the client never hears),
// delays them, duplicates the request against the backend, or truncates
// the response body mid-flight. It exists to prove the shard protocol's
// claim that a flaky network costs retries, never bytes: a sharded run
// whose every worker↔coordinator call crosses this proxy must still
// produce an artifact byte-identical to the unsharded reference.
//
// The schedule is counter-based, not random: every FaultEvery-th request
// is faulted, fault classes rotate round-robin (so all four classes
// trigger on any non-trivial run), and at most MaxConsecutive faults hit
// in a row before a forced pass-through — which guarantees that a client
// with more than MaxConsecutive retry attempts always eventually
// succeeds. The same inputs produce the same fault sequence, keeping
// failures reproducible.
package flakyproxy

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// Fault classes, applied round-robin in this order.
const (
	faultDrop = iota
	faultDelay
	faultDup
	faultTruncate
	numFaults
)

// Options tunes a Proxy's fault schedule.
type Options struct {
	// FaultEvery faults every Nth request (0 disables all faults).
	FaultEvery int
	// MaxConsecutive caps faults in a row before a forced pass-through
	// (default 2). Keep it below the client's retry attempts or nothing
	// ever gets through.
	MaxConsecutive int
	// Delay is the sleep injected by the delay fault (default 25ms).
	Delay time.Duration
}

// Stats counts the faults a Proxy has injected, by class.
type Stats struct {
	// Requests is the total number of requests seen.
	Requests int
	// Drops counts responses severed after the backend served them.
	Drops int
	// Delays counts delayed responses.
	Delays int
	// Dups counts requests delivered to the backend twice.
	Dups int
	// Truncates counts response bodies cut mid-flight.
	Truncates int
}

// Proxy is the fault-injecting http.Handler. Wrap it around a backend
// handler and point clients at a server serving the Proxy.
type Proxy struct {
	backend http.Handler
	opts    Options

	mu          sync.Mutex
	requests    int
	consecutive int
	nextFault   int
	stats       Stats
}

// New wraps backend in a fault-injecting proxy.
func New(backend http.Handler, opts Options) *Proxy {
	if opts.MaxConsecutive <= 0 {
		opts.MaxConsecutive = 2
	}
	if opts.Delay <= 0 {
		opts.Delay = 25 * time.Millisecond
	}
	return &Proxy{backend: backend, opts: opts}
}

// Stats returns a snapshot of the injected-fault counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// decide picks this request's fate: -1 for pass-through, else a fault
// class.
func (p *Proxy) decide() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requests++
	p.stats.Requests++
	if p.opts.FaultEvery <= 0 || p.requests%p.opts.FaultEvery != 0 || p.consecutive >= p.opts.MaxConsecutive {
		p.consecutive = 0
		return -1
	}
	p.consecutive++
	fault := p.nextFault
	p.nextFault = (p.nextFault + 1) % numFaults
	switch fault {
	case faultDrop:
		p.stats.Drops++
	case faultDelay:
		p.stats.Delays++
	case faultDup:
		p.stats.Dups++
	case faultTruncate:
		p.stats.Truncates++
	}
	return fault
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Buffer the body up front so the backend can be served twice (dup)
	// or served with the response discarded (drop).
	var body []byte
	if r.Body != nil {
		body, _ = io.ReadAll(r.Body)
		r.Body.Close()
	}
	replay := func() *http.Request {
		r2 := r.Clone(r.Context())
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
		return r2
	}
	switch p.decide() {
	case faultDrop:
		// The backend does the work — a POST's side effects happen — but
		// the client never sees the response: the lost-200 case, which
		// forces a retry of an already-applied request.
		rec := httptest.NewRecorder()
		p.backend.ServeHTTP(rec, replay())
		p.sever(w)
	case faultDelay:
		time.Sleep(p.opts.Delay)
		p.backend.ServeHTTP(w, replay())
	case faultDup:
		// The backend sees the request twice — the network-duplicated
		// POST — and the client gets the second response.
		rec := httptest.NewRecorder()
		p.backend.ServeHTTP(rec, replay())
		p.backend.ServeHTTP(w, replay())
	case faultTruncate:
		// Advertise the full body, send half, cut the connection: the
		// client's read fails mid-body and must treat the response as
		// never received.
		rec := httptest.NewRecorder()
		p.backend.ServeHTTP(rec, replay())
		p.truncate(w, rec)
	default:
		p.backend.ServeHTTP(w, replay())
	}
}

// sever closes the client connection without writing a response. Without
// hijack support it falls back to a 502, which clients also retry.
func (p *Proxy) sever(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	conn.Close()
}

// truncate writes the recorded response with its full Content-Length but
// only half the body, then cuts the connection.
func (p *Proxy) truncate(w http.ResponseWriter, rec *httptest.ResponseRecorder) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	conn, bufrw, err := hj.Hijack()
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	defer conn.Close()
	body := rec.Body.Bytes()
	fmt.Fprintf(bufrw, "HTTP/1.1 %d %s\r\n", rec.Code, http.StatusText(rec.Code))
	for k, vs := range rec.Header() {
		for _, v := range vs {
			fmt.Fprintf(bufrw, "%s: %s\r\n", k, v)
		}
	}
	fmt.Fprintf(bufrw, "Content-Length: %d\r\nConnection: close\r\n\r\n", len(body))
	bufrw.Write(body[:len(body)/2])
	bufrw.Flush()
}
